package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// RunConcurrent executes the concurrency differential axis: each
// iteration derives a random DTD and document set, builds an MVCC
// WAL-backed store and a plain single-user oracle twin, then runs a
// seeded deterministic schedule that interleaves up to Options.Sessions
// open snapshot transactions — SQL DML on harness-owned slot rows,
// fragment splices, document add/remove — alongside direct autocommit
// operations. A world model predicts, per transaction, the affected-row
// count of every statement under its snapshot and whether Commit must
// succeed or abort with ErrConflict (first-committer-wins); every
// committed transaction's op list replays onto the oracle in commit
// order, which must stay byte-identical to the concurrent store —
// checked by table sweeps mid-schedule, a full store comparison at the
// end, and once more after crash-recovering the MVCC store from its WAL.
func RunConcurrent(opts Options) (*Summary, error) {
	opts.setDefaults()
	sum := &Summary{}
	for iter := 0; iter < opts.Iters; iter++ {
		seed := opts.Seed + int64(iter)
		cs, err := newConState(opts, seed, nil, nil)
		if err != nil {
			return sum, fmt.Errorf("concurrent iteration %d (seed %d): %w", iter, seed, err)
		}
		divs, cells, err := cs.run(opts)
		if err != nil {
			return sum, fmt.Errorf("concurrent iteration %d (seed %d): %w", iter, seed, err)
		}
		sum.Iters++
		sum.Cells += cells
		if len(divs) > 0 {
			for i := range divs {
				divs[i].Iter, divs[i].Seed = iter, seed
			}
			sum.Divergences = append(sum.Divergences, divs...)
			fmt.Fprintf(opts.Log, "difftest: concurrent iteration %d (seed %d) diverged: %s\n",
				iter, seed, divs[0].Detail)
			if sum.Artifact == "" {
				min := minimizeConcurrent(opts, seed, cs, divs[0])
				if err := writeConcurrentArtifact(opts, min, divs[0]); err != nil {
					fmt.Fprintf(opts.Log, "difftest: writing artifact: %v\n", err)
				} else {
					sum.Artifact = opts.ArtifactPath
				}
			}
			if opts.FailFast {
				break
			}
		}
		if (iter+1)%25 == 0 {
			fmt.Fprintf(opts.Log, "difftest: concurrent %d/%d iterations, %d cells, %d divergences\n",
				iter+1, opts.Iters, sum.Cells, len(sum.Divergences))
		}
	}
	return sum, nil
}

// conEffect is one committed transaction's model-level effect, replayed
// into the world model in op order when its transaction commits.
type conEffect struct {
	kind string // "slot+", "slot-", "doc+", "doc-"
	slot int64
	doc  int64
}

// conSession is one open transaction: the live session, its snapshot of
// the model (visible slots and documents), its recorded model effects,
// and the logical objects it wrote (for conflict prediction).
type conSession struct {
	id       int
	s        *core.Session
	beginIdx int
	slots    map[int64]bool
	live     map[int64]bool
	effects  []conEffect
	writes   map[string]bool
}

// conState is one concurrent iteration: generated inputs, the MVCC
// store under test plus its serial oracle, and the world model.
type conState struct {
	seed   int64
	alg    core.Algorithm
	dtdSrc string
	root   string
	d      *dtd.DTD
	format *xadt.Format
	docs   []*xmltree.Document
	texts  []string
	rng    *rand.Rand

	mv     *core.Store
	mvVFS  storage.VFS
	oracle *core.Store

	// The slot relation hosts harness-owned rows under unique negative
	// IDs, so DML victims are exact and never collide with shredded
	// document rows (whose IDs count up from 1).
	slotRel     string
	idCol       string
	strCol      string // empty: no settable string column, UPDATE retired
	spliceCol   string
	spliceChild string

	// World model: committed state and a logical commit clock. lastWrite
	// maps a logical object ("s:<slot>" or "d:<doc>") to the commit
	// index of its last committed write; a transaction conflicts iff one
	// of its written objects committed after the transaction began.
	commitIdx int
	lastWrite map[string]int
	slots     map[int64]bool
	live      map[int64]bool
	nextSlot  int64
	nextSess  int

	sessions []*conSession
	opLog    []string
}

func newConState(opts Options, seed int64, docs []*xmltree.Document, texts []string) (*conState, error) {
	genRng := rand.New(rand.NewSource(seed))
	cs := &conState{seed: seed, root: "E0", nextSlot: 1,
		lastWrite: map[string]int{}, slots: map[int64]bool{}, live: map[int64]bool{}}
	cs.alg = core.XORator
	if seed%2 != 0 {
		cs.alg = core.Hybrid
	}
	cs.dtdSrc = genDTD(genRng)
	var err error
	cs.d, err = dtd.Parse(cs.dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("generated DTD does not parse: %w\n%s", err, cs.dtdSrc)
	}
	switch genRng.Intn(3) {
	case 0:
	case 1:
		f := xadt.Raw
		cs.format = &f
	default:
		f := xadt.Compressed
		cs.format = &f
	}
	if docs == nil {
		docs, texts, err = genDocs(genRng, cs.d, cs.root, opts.Docs)
		if err != nil {
			return nil, err
		}
	}
	cs.docs, cs.texts = docs, texts
	// The op stream is seeded independently of document generation, so a
	// minimized run (fewer initial documents) replays the same schedule.
	cs.rng = rand.New(rand.NewSource(seed ^ 0x5e551075))
	if err := cs.build(); err != nil {
		return nil, err
	}
	return cs, nil
}

func (cs *conState) build() error {
	cs.mvVFS = storage.NewMemVFS()
	var err error
	cs.mv, err = core.NewStore(cs.dtdSrc, core.Config{Algorithm: cs.alg, ForceFormat: cs.format,
		Engine: engine.Config{MVCC: true, WALDir: "wal", WALSync: wal.SyncAlways, VFS: cs.mvVFS}})
	if err != nil {
		return fmt.Errorf("mvcc store: %w", err)
	}
	cs.oracle, err = core.NewStore(cs.dtdSrc, core.Config{Algorithm: cs.alg, ForceFormat: cs.format})
	if err != nil {
		return fmt.Errorf("oracle store: %w", err)
	}
	ids, err := cs.mv.AddDocuments(cs.docs)
	if err != nil {
		return fmt.Errorf("mvcc add: %w", err)
	}
	oids, err := cs.oracle.AddDocuments(cs.docs)
	if err != nil {
		return fmt.Errorf("oracle add: %w", err)
	}
	if len(ids) != len(oids) {
		return fmt.Errorf("document ID allocation diverged: %v vs %v", ids, oids)
	}
	for i := range ids {
		if ids[i] != oids[i] {
			return fmt.Errorf("document ID allocation diverged: %v vs %v", ids, oids)
		}
		cs.live[ids[i]] = true
	}
	// Indexes build before any session opens (index builds take the
	// exclusive path); sessions then see per-snapshot filtered views.
	for _, s := range []*core.Store{cs.mv, cs.oracle} {
		if err := s.CreateDefaultIndexes(); err != nil {
			return err
		}
		if err := s.RunStats(); err != nil {
			return err
		}
	}
	cs.pickSlotRel()
	return nil
}

// pickSlotRel chooses the relation harness-owned slot rows live in: the
// first relation with an ID column, preferring one that also offers a
// settable string column, and — under XORator — an XADT column for
// splices.
func (cs *conState) pickSlotRel() {
	schema := cs.mv.Schema
	best := -1
	for _, rel := range schema.Relations {
		idc := relIDIdx(rel)
		if idc < 0 {
			continue
		}
		score := 1
		strCol := ""
		for _, c := range rel.Columns {
			if c.Type == mapping.String {
				switch c.Kind {
				case mapping.KindValue, mapping.KindAttr, mapping.KindInlined, mapping.KindInlinedAttr:
					strCol = c.Name
				}
			}
		}
		if strCol != "" {
			score++
		}
		spliceCol, spliceChild := "", ""
		for _, x := range schemaXadtCols(schema) {
			if x.rel.Name == rel.Name {
				spliceCol, spliceChild = x.col.Name, x.child
				break
			}
		}
		if spliceCol != "" {
			score++
		}
		if score > best {
			best = score
			cs.slotRel = rel.Name
			cs.idCol = rel.Columns[idc].Name
			cs.strCol = strCol
			cs.spliceCol, cs.spliceChild = spliceCol, spliceChild
		}
	}
}

func (cs *conState) logf(format string, args ...any) {
	cs.opLog = append(cs.opLog, fmt.Sprintf(format, args...))
}

// div builds a divergence for the concurrent axis.
func conDiv(axis, detail string) Divergence {
	return Divergence{Case: Case{Name: "(concurrent)"}, Axis: axis, Detail: detail}
}

// run plays the schedule. It returns at the first divergence: the model
// and the stores disagree from that point on, so later steps would only
// produce noise.
func (cs *conState) run(opts Options) ([]Divergence, int, error) {
	cells := 0
	for step := 0; step < opts.Ops; step++ {
		divs, n, err := cs.step(opts)
		cells += n
		if err != nil {
			return nil, cells, fmt.Errorf("step %d: %w", step, err)
		}
		if len(divs) > 0 {
			return divs, cells, nil
		}
		if step%8 == 7 {
			divs, n, err := cs.compareState()
			cells += n
			if err != nil {
				return nil, cells, fmt.Errorf("step %d sweep: %w", step, err)
			}
			if len(divs) > 0 {
				return divs, cells, nil
			}
		}
	}
	// Settle every open transaction, then the final full comparison and
	// the crash-recovery twin.
	for len(cs.sessions) > 0 {
		var divs []Divergence
		var err error
		if cs.rng.Intn(3) == 0 {
			cs.rollbackSession(cs.rng.Intn(len(cs.sessions)))
		} else {
			divs, err = cs.commitSession(cs.rng.Intn(len(cs.sessions)))
			cells++
		}
		if err != nil {
			return nil, cells, err
		}
		if len(divs) > 0 {
			return divs, cells, nil
		}
	}
	divs, n, err := cs.compareState()
	cells += n
	if err != nil || len(divs) > 0 {
		return divs, cells, err
	}
	cells++
	if err := CompareStores(cs.mv, cs.oracle); err != nil {
		return []Divergence{conDiv("concurrent:final-state", err.Error())}, cells, nil
	}
	// Crash the MVCC store (abandon the handle) and recover from its
	// checkpoint + WAL: every committed transaction must be there, and
	// nothing else.
	rec, err := core.OpenRecovered(core.Config{ForceFormat: cs.format,
		Engine: engine.Config{MVCC: true, WALDir: "wal", WALSync: wal.SyncAlways, VFS: cs.mvVFS}})
	if err != nil {
		return nil, cells, fmt.Errorf("recovering mvcc store: %w", err)
	}
	cells++
	if err := CompareStores(rec, cs.oracle); err != nil {
		return []Divergence{conDiv("concurrent:recovered-state", err.Error())}, cells, nil
	}
	return nil, cells, nil
}

// step performs one schedule action.
func (cs *conState) step(opts Options) ([]Divergence, int, error) {
	switch r := cs.rng.Intn(10); {
	case r < 2 && len(cs.sessions) < opts.Sessions:
		cs.openSession()
		return nil, 0, nil
	case r < 4 && len(cs.sessions) > 0:
		if cs.rng.Intn(4) == 0 {
			cs.rollbackSession(cs.rng.Intn(len(cs.sessions)))
			return nil, 0, nil
		}
		divs, err := cs.commitSession(cs.rng.Intn(len(cs.sessions)))
		return divs, 1, err
	case r < 8 && len(cs.sessions) > 0:
		divs, err := cs.sessionOp(cs.sessions[cs.rng.Intn(len(cs.sessions))])
		return divs, 1, err
	default:
		divs, err := cs.directOp()
		return divs, 1, err
	}
}

func (cs *conState) openSession() {
	s, err := cs.mv.NewSession()
	if err != nil {
		// Surfaced by the next op on the nil session; should not happen.
		panic(err)
	}
	c := &conSession{id: cs.nextSess, s: s, beginIdx: cs.commitIdx,
		slots: map[int64]bool{}, live: map[int64]bool{}, writes: map[string]bool{}}
	cs.nextSess++
	for k := range cs.slots {
		c.slots[k] = true
	}
	for d := range cs.live {
		c.live[d] = true
	}
	cs.sessions = append(cs.sessions, c)
	cs.logf("T%d begin (clock %d)", c.id, c.beginIdx)
}

func (cs *conState) rollbackSession(i int) {
	c := cs.sessions[i]
	c.s.Rollback()
	cs.sessions = append(cs.sessions[:i], cs.sessions[i+1:]...)
	cs.logf("T%d rollback", c.id)
}

// commitSession commits session i, checks the predicted outcome, and on
// success replays the transaction onto the oracle and the model.
func (cs *conState) commitSession(i int) ([]Divergence, error) {
	c := cs.sessions[i]
	cs.sessions = append(cs.sessions[:i], cs.sessions[i+1:]...)
	expectConflict := false
	for obj := range c.writes {
		if cs.lastWrite[obj] > c.beginIdx {
			expectConflict = true
			break
		}
	}
	ops := c.s.Ops()
	err := c.s.Commit()
	switch {
	case err == nil && expectConflict:
		cs.logf("T%d commit: succeeded, model expected conflict", c.id)
		return []Divergence{conDiv("concurrent:conflict",
			fmt.Sprintf("T%d committed but a write-write conflict was expected (writes %v, begin %d)",
				c.id, keys(c.writes), c.beginIdx))}, nil
	case err != nil && !expectConflict:
		if errors.Is(err, core.ErrConflict) {
			cs.logf("T%d commit: unexpected conflict: %v", c.id, err)
			return []Divergence{conDiv("concurrent:conflict",
				fmt.Sprintf("T%d aborted (%v) but the model saw no conflicting commit", c.id, err))}, nil
		}
		return nil, fmt.Errorf("T%d commit: %w", c.id, err)
	case err != nil:
		if !errors.Is(err, core.ErrConflict) {
			return nil, fmt.Errorf("T%d commit (conflict expected): %w", c.id, err)
		}
		cs.logf("T%d commit: conflict as expected", c.id)
		return nil, nil
	}
	// Committed: the oracle applies the same ops, the model advances.
	if err := core.ApplyTxnOps(cs.oracle, ops); err != nil {
		return nil, fmt.Errorf("oracle replay of T%d: %w", c.id, err)
	}
	cs.commitIdx++
	for obj := range c.writes {
		cs.lastWrite[obj] = cs.commitIdx
	}
	for _, e := range c.effects {
		cs.applyEffect(e)
	}
	cs.logf("T%d commit ok (clock %d, %d ops)", c.id, cs.commitIdx, len(ops))
	return nil, nil
}

// applyEffect replays one committed effect into the model, in op order —
// document IDs assign exactly like the store's commit-time loader (one
// past the highest live ID at that point).
func (cs *conState) applyEffect(e conEffect) {
	switch e.kind {
	case "slot+":
		cs.slots[e.slot] = true
		cs.lastWrite[fmt.Sprintf("s:%d", e.slot)] = cs.commitIdx
	case "slot-":
		delete(cs.slots, e.slot)
	case "doc+":
		id := int64(0)
		for d := range cs.live {
			if d > id {
				id = d
			}
		}
		id++
		cs.live[id] = true
		cs.lastWrite[fmt.Sprintf("d:%d", id)] = cs.commitIdx
	case "doc-":
		delete(cs.live, e.doc)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sessionOp records one operation on an open transaction and checks its
// result against the session's snapshot model.
func (cs *conState) sessionOp(c *conSession) ([]Divergence, error) {
	kind := cs.rng.Intn(7)
	if cs.slotRel == "" && kind <= 3 {
		kind = 4 + cs.rng.Intn(3)
	}
	switch kind {
	case 0: // insert a fresh slot row
		k := cs.nextSlot
		cs.nextSlot++
		stmt := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%d)", cs.slotRel, cs.idCol, -k)
		n, err := c.s.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("T%d %q: %w", c.id, stmt, err)
		}
		cs.logf("T%d insert slot %d", c.id, k)
		if n != 1 {
			return []Divergence{conDiv("concurrent:session-count",
				fmt.Sprintf("T%d %q affected %d rows, want 1", c.id, stmt, n))}, nil
		}
		c.slots[k] = true
		c.effects = append(c.effects, conEffect{kind: "slot+", slot: k})
		return nil, nil
	case 1, 2: // update or delete a slot row, sometimes an invisible one
		k := cs.pickSlot(c)
		if k == 0 {
			return nil, nil
		}
		var stmt, verb string
		if kind == 1 && cs.strCol != "" {
			verb = "update"
			stmt = fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s = %d", cs.slotRel, cs.strCol,
				sqlString(plainWords[cs.rng.Intn(len(plainWords))]), cs.idCol, -k)
		} else {
			verb = "delete"
			stmt = fmt.Sprintf("DELETE FROM %s WHERE %s = %d", cs.slotRel, cs.idCol, -k)
		}
		want := int64(0)
		if c.slots[k] {
			want = 1
		}
		n, err := c.s.Exec(stmt)
		if err != nil {
			return nil, fmt.Errorf("T%d %q: %w", c.id, stmt, err)
		}
		cs.logf("T%d %s slot %d (visible %v)", c.id, verb, k, want == 1)
		if n != want {
			return []Divergence{conDiv("concurrent:session-count",
				fmt.Sprintf("T%d %q affected %d rows, want %d", c.id, stmt, n, want))}, nil
		}
		if want == 1 {
			c.writes[fmt.Sprintf("s:%d", k)] = true
			if verb == "delete" {
				delete(c.slots, k)
				c.effects = append(c.effects, conEffect{kind: "slot-", slot: k})
			}
		}
		return nil, nil
	case 3: // splice a slot row's fragment (XORator slot relations only)
		if cs.spliceCol == "" {
			return nil, nil
		}
		k := cs.pickVisibleSlot(c)
		if k == 0 {
			return nil, nil
		}
		frags := []string{fmt.Sprintf("<%s>%s</%s>", cs.spliceChild,
			plainWords[cs.rng.Intn(len(plainWords))], cs.spliceChild)}
		if err := c.s.SpliceFragment(cs.slotRel, cs.spliceCol, -k, frags); err != nil {
			return nil, fmt.Errorf("T%d splice slot %d: %w", c.id, k, err)
		}
		cs.logf("T%d splice slot %d", c.id, k)
		c.writes[fmt.Sprintf("s:%d", k)] = true
		return nil, nil
	case 4: // add a document (shredded at commit)
		docs, _, err := genDocs(cs.rng, cs.d, cs.root, 1)
		if err != nil {
			return nil, err
		}
		if err := c.s.AddDocuments(docs); err != nil {
			return nil, fmt.Errorf("T%d add doc: %w", c.id, err)
		}
		cs.logf("T%d add doc (pending)", c.id)
		c.effects = append(c.effects, conEffect{kind: "doc+"})
		return nil, nil
	case 5: // remove a document visible in this snapshot
		d := cs.pickDoc(c)
		if d == 0 {
			return nil, nil
		}
		if err := c.s.RemoveDocument(d); err != nil {
			return nil, fmt.Errorf("T%d remove doc %d: %w", c.id, d, err)
		}
		cs.logf("T%d remove doc %d", c.id, d)
		c.writes[fmt.Sprintf("d:%d", d)] = true
		delete(c.live, d)
		c.effects = append(c.effects, conEffect{kind: "doc-", doc: d})
		return nil, nil
	default: // repeated-read stability inside the snapshot
		q := cs.sweepQuery(cs.slotRel)
		if q == "" {
			return nil, nil
		}
		a, err := c.s.Query(q)
		if err != nil {
			return nil, fmt.Errorf("T%d %q: %w", c.id, q, err)
		}
		b, err := c.s.Query(q)
		if err != nil {
			return nil, fmt.Errorf("T%d %q: %w", c.id, q, err)
		}
		cs.logf("T%d stability check", c.id)
		if !equalStrings(canonRows(a.Rows), canonRows(b.Rows)) {
			return []Divergence{conDiv("concurrent:snapshot-stability",
				fmt.Sprintf("T%d repeated %q changed: %s", c.id, q, diffRows(a.Rows, b.Rows)))}, nil
		}
		return nil, nil
	}
}

// pickSlot picks a slot ID for DML: usually one the session sees, but
// sometimes one it does not (committed after its snapshot, deleted, or
// never created) so zero-match statements get coverage too.
func (cs *conState) pickSlot(c *conSession) int64 {
	if cs.rng.Intn(4) == 0 && cs.nextSlot > 1 {
		return 1 + cs.rng.Int63n(cs.nextSlot-1)
	}
	return cs.pickVisibleSlot(c)
}

func (cs *conState) pickVisibleSlot(c *conSession) int64 {
	if len(c.slots) == 0 {
		return 0
	}
	ks := make([]int64, 0, len(c.slots))
	for k := range c.slots {
		ks = append(ks, k)
	}
	sortInt64s(ks)
	return ks[cs.rng.Intn(len(ks))]
}

func (cs *conState) pickDoc(c *conSession) int64 {
	if len(c.live) == 0 {
		return 0
	}
	ds := make([]int64, 0, len(c.live))
	for d := range c.live {
		ds = append(ds, d)
	}
	sortInt64s(ds)
	return ds[cs.rng.Intn(len(ds))]
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// directOp runs one autocommit operation on both stores — on the MVCC
// store it is its own committed transaction threaded through the
// transaction manager, interleaved with whatever sessions are open.
func (cs *conState) directOp() ([]Divergence, error) {
	kind := cs.rng.Intn(5)
	if cs.slotRel == "" && kind <= 1 {
		kind = 2 + cs.rng.Intn(3)
	}
	switch kind {
	case 0: // direct insert
		k := cs.nextSlot
		cs.nextSlot++
		stmt := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%d)", cs.slotRel, cs.idCol, -k)
		return cs.directExec(stmt, 1, conEffect{kind: "slot+", slot: k})
	case 1: // direct update or delete
		k := int64(0)
		if cs.nextSlot > 1 {
			k = 1 + cs.rng.Int63n(cs.nextSlot-1)
		}
		if k == 0 {
			return nil, nil
		}
		want := int64(0)
		if cs.slots[k] {
			want = 1
		}
		if cs.strCol != "" && cs.rng.Intn(2) == 0 {
			stmt := fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s = %d", cs.slotRel, cs.strCol,
				sqlString(plainWords[cs.rng.Intn(len(plainWords))]), cs.idCol, -k)
			eff := conEffect{}
			if want == 1 {
				eff = conEffect{kind: "slot~", slot: k}
			}
			return cs.directExec(stmt, want, eff)
		}
		eff := conEffect{}
		if want == 1 {
			eff = conEffect{kind: "slot-", slot: k}
		}
		return cs.directExec(fmt.Sprintf("DELETE FROM %s WHERE %s = %d", cs.slotRel, cs.idCol, -k), want, eff)
	case 2: // direct document add
		docs, _, err := genDocs(cs.rng, cs.d, cs.root, 1)
		if err != nil {
			return nil, err
		}
		ids, err := cs.mv.AddDocuments(docs)
		if err != nil {
			return nil, fmt.Errorf("direct add (mvcc): %w", err)
		}
		oids, err := cs.oracle.AddDocuments(docs)
		if err != nil {
			return nil, fmt.Errorf("direct add (oracle): %w", err)
		}
		cs.logf("direct add doc %v", ids)
		if len(ids) != 1 || len(oids) != 1 || ids[0] != oids[0] {
			return []Divergence{conDiv("concurrent:docid",
				fmt.Sprintf("direct add assigned %v vs oracle %v", ids, oids))}, nil
		}
		cs.commitIdx++
		cs.live[ids[0]] = true
		cs.lastWrite[fmt.Sprintf("d:%d", ids[0])] = cs.commitIdx
		return nil, nil
	case 3: // direct document remove
		d := int64(0)
		if len(cs.live) > 0 {
			ds := make([]int64, 0, len(cs.live))
			for k := range cs.live {
				ds = append(ds, k)
			}
			sortInt64s(ds)
			d = ds[cs.rng.Intn(len(ds))]
		}
		if d == 0 {
			return nil, nil
		}
		if err := cs.mv.RemoveDocument(d); err != nil {
			return nil, fmt.Errorf("direct remove %d (mvcc): %w", d, err)
		}
		if err := cs.oracle.RemoveDocument(d); err != nil {
			return nil, fmt.Errorf("direct remove %d (oracle): %w", d, err)
		}
		cs.logf("direct remove doc %d", d)
		cs.commitIdx++
		cs.lastWrite[fmt.Sprintf("d:%d", d)] = cs.commitIdx
		delete(cs.live, d)
		return nil, nil
	default: // autocommit read on the latest state, against the oracle
		q := cs.sweepQuery(cs.slotRel)
		if q == "" {
			return nil, nil
		}
		a, err := cs.mv.Query(q)
		if err != nil {
			return nil, fmt.Errorf("mvcc %q: %w", q, err)
		}
		b, err := cs.oracle.Query(q)
		if err != nil {
			return nil, fmt.Errorf("oracle %q: %w", q, err)
		}
		cs.logf("direct query check")
		if !equalStrings(sortedCanon(a.Rows), sortedCanon(b.Rows)) {
			return []Divergence{conDiv("concurrent:state",
				fmt.Sprintf("%q: %s", q, diffCanon(sortedCanon(a.Rows), sortedCanon(b.Rows))))}, nil
		}
		return nil, nil
	}
}

// directExec runs one autocommit statement on both stores, requiring
// the same affected-row count as the model, then advances the model.
func (cs *conState) directExec(stmt string, want int64, eff conEffect) ([]Divergence, error) {
	n, err := cs.mv.Exec(stmt)
	if err != nil {
		return nil, fmt.Errorf("mvcc %q: %w", stmt, err)
	}
	on, err := cs.oracle.Exec(stmt)
	if err != nil {
		return nil, fmt.Errorf("oracle %q: %w", stmt, err)
	}
	cs.logf("direct %s (affected %d)", stmt, n)
	if n != want || on != want {
		return []Divergence{conDiv("concurrent:dml-count",
			fmt.Sprintf("%q affected mvcc=%d oracle=%d, model wants %d", stmt, n, on, want))}, nil
	}
	cs.commitIdx++
	switch eff.kind {
	case "slot+":
		cs.slots[eff.slot] = true
		cs.lastWrite[fmt.Sprintf("s:%d", eff.slot)] = cs.commitIdx
	case "slot-":
		delete(cs.slots, eff.slot)
		cs.lastWrite[fmt.Sprintf("s:%d", eff.slot)] = cs.commitIdx
	case "slot~":
		cs.lastWrite[fmt.Sprintf("s:%d", eff.slot)] = cs.commitIdx
	}
	return nil, nil
}

// sweepQuery selects every column of a relation, for canonical
// comparison between the MVCC store and the oracle.
func (cs *conState) sweepQuery(rel string) string {
	r := cs.mv.Schema.Relation(rel)
	if r == nil {
		return ""
	}
	cols := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = c.Name
	}
	return fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), rel)
}

// compareState sweeps every relation: a fresh session on the MVCC store
// must match the oracle row-for-row (both heaps are written by the same
// op lists in the same order, so even physical order agrees; the
// comparison still sorts, leaving layout to the byte-level
// CompareStores at the end).
func (cs *conState) compareState() ([]Divergence, int, error) {
	cells := 0
	s, err := cs.mv.NewSession()
	if err != nil {
		return nil, 0, err
	}
	defer s.Rollback()
	for _, rel := range cs.mv.Schema.Relations {
		q := cs.sweepQuery(rel.Name)
		if q == "" {
			continue
		}
		a, err := s.Query(q)
		if err != nil {
			return nil, cells, fmt.Errorf("mvcc session %q: %w", q, err)
		}
		b, err := cs.oracle.Query(q)
		if err != nil {
			return nil, cells, fmt.Errorf("oracle %q: %w", q, err)
		}
		cells++
		if !equalStrings(sortedCanon(a.Rows), sortedCanon(b.Rows)) {
			return []Divergence{conDiv("concurrent:state",
				fmt.Sprintf("%q: %s", q, diffCanon(sortedCanon(a.Rows), sortedCanon(b.Rows))))}, cells, nil
		}
	}
	return nil, cells, nil
}

// minimizeConcurrent re-runs the iteration on progressively smaller
// initial document sets; the schedule is seeded independently, so a
// reduced run replays the same step stream.
func minimizeConcurrent(opts Options, seed int64, cs *conState, d Divergence) *conState {
	best := cs
	docs, texts := cs.docs, cs.texts
	for i := len(docs) - 1; i >= 0 && len(docs) > 1; i-- {
		tryDocs := make([]*xmltree.Document, 0, len(docs)-1)
		tryDocs = append(append(tryDocs, docs[:i]...), docs[i+1:]...)
		tryTexts := make([]string, 0, len(texts)-1)
		tryTexts = append(append(tryTexts, texts[:i]...), texts[i+1:]...)
		sub, err := newConState(opts, seed, tryDocs, tryTexts)
		if err != nil {
			continue
		}
		divs, _, err := sub.run(opts)
		if err != nil {
			continue
		}
		for _, sd := range divs {
			if sd.Axis == d.Axis {
				docs, texts, best = tryDocs, tryTexts, sub
				break
			}
		}
	}
	return best
}

func writeConcurrentArtifact(opts Options, cs *conState, d Divergence) error {
	var sb strings.Builder
	sb.WriteString("# difftest concurrent divergence artifact\n")
	fmt.Fprintf(&sb, "# replay: go run ./cmd/repro -exp difftest -concurrent -seed %d -iters 1\n", d.Seed)
	fmt.Fprintf(&sb, "seed: %d\niteration: %d\naxis: %s\ndetail: %s\n",
		d.Seed, d.Iter, d.Axis, d.Detail)
	fmt.Fprintf(&sb, "algorithm: %s\n", cs.alg)
	if cs.format != nil {
		fmt.Fprintf(&sb, "xadt format: %v\n", *cs.format)
	}
	fmt.Fprintf(&sb, "steps: %d, sessions: %d\nslot relation: %s (id %s, str %q, splice %q)\n",
		opts.Ops, opts.Sessions, cs.slotRel, cs.idCol, cs.strCol, cs.spliceCol)
	sb.WriteString("\n--- schedule ---\n")
	for i, op := range cs.opLog {
		fmt.Fprintf(&sb, "%3d: %s\n", i, op)
	}
	fmt.Fprintf(&sb, "\n--- DTD ---\n%s", cs.dtdSrc)
	for i, t := range cs.texts {
		fmt.Fprintf(&sb, "\n--- document %d of %d (minimized) ---\n%s\n", i+1, len(cs.texts), t)
	}
	return os.WriteFile(opts.ArtifactPath, []byte(sb.String()), 0o644)
}
