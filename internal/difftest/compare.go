package difftest

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/engine/storage"
	"repro/internal/engine/types"

	"repro/internal/core"
)

// CompareStores verifies that got holds exactly the state of want: the
// same XADT format decision, the same tables, and byte-identical rows in
// the same heap order. It is the comparator the crash-recovery matrix
// uses to check a recovered store against its uninterrupted twin, where
// "equivalent" is not enough — replayed rows must be indistinguishable
// from directly inserted ones.
func CompareStores(got, want *core.Store) error {
	if got.Format != want.Format {
		return fmt.Errorf("XADT format %v, want %v", got.Format, want.Format)
	}
	gn := sortedNames(got)
	wn := sortedNames(want)
	if !equalStrings(gn, wn) {
		return fmt.Errorf("tables %v, want %v", gn, wn)
	}
	for _, name := range wn {
		gt, wt := got.Table(name), want.Table(name)
		if gt.Rows() != wt.Rows() {
			return fmt.Errorf("table %s: %d rows, want %d", name, gt.Rows(), wt.Rows())
		}
		gr, err := heapRows(gt.Heap)
		if err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		wr, err := heapRows(wt.Heap)
		if err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
		for i := range wr {
			if !reflect.DeepEqual(gr[i], wr[i]) {
				return fmt.Errorf("table %s row %d: %s, want %s",
					name, i, clip(canonRow(gr[i])), clip(canonRow(wr[i])))
			}
		}
	}
	return nil
}

func sortedNames(st *core.Store) []string {
	names := append([]string(nil), st.DB.Catalog.TableNames()...)
	sort.Strings(names)
	return names
}

func heapRows(h *storage.HeapFile) ([][]types.Value, error) {
	var rows [][]types.Value
	err := h.Scan(func(_ storage.RID, row []types.Value) error {
		rows = append(rows, row)
		return nil
	})
	return rows, err
}

func canonRow(r []types.Value) string {
	return canonRows([][]types.Value{r})[0]
}
