// Package difftest is a seeded differential-correctness harness. Each
// iteration derives a random DTD, generates documents that conform to it by
// construction, shreds them under both the Hybrid and XORator mappings (plus
// a headerless legacy XADT twin), and executes randomly generated queries
// across the full configuration matrix — mapping × DOP × XADT fast path —
// asserting that every cell returns identical rows. Any divergence is
// minimized and written to a failure artifact that replays from its seed.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// maxDocDepth bounds recursive descent while generating documents: once an
// element sits deeper than this, optional and starred particles emit zero
// occurrences, so recursion in the DTD always terminates.
const maxDocDepth = 8

func elemName(i int) string { return fmt.Sprintf("E%d", i) }

// genDTD derives a random document type definition. Element E0 is never
// referenced by any content model, so it is always the unique generated
// root; low-numbered elements are containers (element, mixed, or recursive
// content), high-numbered ones are leaves (#PCDATA or EMPTY). Back-edges —
// the only source of cycles — are always optional or starred, which keeps
// document generation terminating.
func genDTD(rng *rand.Rand) string {
	n := 6 + rng.Intn(5) // elements E0..En
	leafStart := n/2 + 1
	var sb strings.Builder
	for i := 0; i <= n; i++ {
		name := elemName(i)
		switch {
		case i >= leafStart && rng.Intn(5) == 0:
			fmt.Fprintf(&sb, "<!ELEMENT %s EMPTY>\n", name)
		case i >= leafStart:
			fmt.Fprintf(&sb, "<!ELEMENT %s (#PCDATA)>\n", name)
		case rng.Intn(5) == 0: // mixed content
			k := 1 + rng.Intn(2)
			kids := pickChildren(rng, i, n, k)
			fmt.Fprintf(&sb, "<!ELEMENT %s (#PCDATA|%s)*>\n", name, strings.Join(kids, "|"))
		default:
			model := genGroup(rng, i, n, 0)
			if i > 0 && rng.Intn(4) == 0 {
				// Recursive back-edge to an equal-or-lower element,
				// never E0 and never mandatory.
				occ := "?"
				if rng.Intn(2) == 0 {
					occ = "*"
				}
				model = fmt.Sprintf("(%s, %s%s)", model, elemName(1+rng.Intn(i)), occ)
			}
			fmt.Fprintf(&sb, "<!ELEMENT %s %s>\n", name, model)
		}
		if atts := genAttlist(rng, name); atts != "" {
			sb.WriteString(atts)
		}
	}
	return sb.String()
}

// genGroup builds a sequence or choice group over higher-numbered elements,
// nesting one level deep at most. The returned string includes the
// surrounding parentheses.
func genGroup(rng *rand.Rand, i, n, depth int) string {
	k := 1 + rng.Intn(3)
	choice := rng.Intn(3) == 0
	if choice && k < 2 {
		k = 2
	}
	items := make([]string, 0, k)
	for j := 0; j < k; j++ {
		if depth == 0 && rng.Intn(5) == 0 {
			items = append(items, genGroup(rng, i, n, 1)+occSuffix(rng))
		} else {
			items = append(items, elemName(i+1+rng.Intn(n-i))+occSuffix(rng))
		}
	}
	sep := ", "
	if choice {
		sep = " | "
	}
	return "(" + strings.Join(items, sep) + ")"
}

func occSuffix(rng *rand.Rand) string {
	return [...]string{"", "", "?", "+", "*", "*"}[rng.Intn(6)]
}

// pickChildren picks k distinct element names with index > i.
func pickChildren(rng *rand.Rand, i, n, k int) []string {
	pool := rng.Perm(n - i)
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]string, k)
	for j := 0; j < k; j++ {
		out[j] = elemName(i + 1 + pool[j])
	}
	return out
}

var enumValues = []string{"red", "green", "blue"}

// genAttlist emits 0-2 attribute declarations (named k0, k1) covering the
// CDATA/enumerated × required/implied/defaulted corners.
func genAttlist(rng *rand.Rand, name string) string {
	na := rng.Intn(3)
	if na == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "<!ATTLIST %s", name)
	for a := 0; a < na; a++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, " k%d CDATA #REQUIRED", a)
		case 1:
			fmt.Fprintf(&sb, " k%d CDATA #IMPLIED", a)
		case 2:
			fmt.Fprintf(&sb, " k%d CDATA \"dflt\"", a)
		case 3:
			fmt.Fprintf(&sb, " k%d (%s) \"%s\"", a,
				strings.Join(enumValues, "|"), enumValues[rng.Intn(len(enumValues))])
		default:
			fmt.Fprintf(&sb, " k%d (%s) #IMPLIED", a, strings.Join(enumValues, "|"))
		}
	}
	sb.WriteString(">\n")
	return sb.String()
}

// Word pools for generated character data. spiceWords exercise the
// serializer's escaping and the entity decoder; plain words are the
// substring-search keys the query generator samples.
var plainWords = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
	"victor", "whiskey", "xray", "yankee", "zulu", "42", "2002",
}

var spiceWords = []string{
	"a&b", "x<y", "p>q", "it's", `say "hi"`, "café", "Ωmega", "<&>",
}

func genText(rng *rand.Rand) string {
	k := 1 + rng.Intn(3)
	words := make([]string, k)
	for i := range words {
		if rng.Intn(4) == 0 {
			words[i] = spiceWords[rng.Intn(len(spiceWords))]
		} else {
			words[i] = plainWords[rng.Intn(len(plainWords))]
		}
	}
	return strings.Join(words, " ")
}

func genAttrValue(rng *rand.Rand) string { return genText(rng) }

// genDoc builds one document conforming to d, rooted at root. Content is
// produced by walking the original (pre-simplification) content model, so
// conformance holds by construction; a depth budget forces optional and
// starred particles to zero occurrences deep in the tree.
func genDoc(rng *rand.Rand, d *dtd.DTD, root string) *xmltree.Document {
	return &xmltree.Document{Root: genElem(rng, d, root, 0)}
}

func genElem(rng *rand.Rand, d *dtd.DTD, name string, depth int) *xmltree.Node {
	decl := d.Element(name)
	n := xmltree.NewElement(name)
	genAttrs(rng, decl, n)
	switch decl.Content {
	case dtd.ContentEmpty:
	case dtd.ContentPCDATA:
		if rng.Intn(8) != 0 { // occasionally leave the element empty
			n.AppendText(genText(rng))
		}
	case dtd.ContentMixed:
		genMixed(rng, d, decl, n, depth)
	case dtd.ContentChildren:
		genParticle(rng, d, decl.Model, n, depth)
	}
	return n
}

func genAttrs(rng *rand.Rand, decl *dtd.Element, n *xmltree.Node) {
	for _, a := range decl.Attrs {
		set := a.Default == dtd.DefaultRequired || rng.Intn(2) == 0
		if !set {
			continue
		}
		var v string
		switch {
		case a.Type == dtd.AttrEnum:
			v = a.Enum[rng.Intn(len(a.Enum))]
		case a.Default == dtd.DefaultFixed:
			v = a.Value
		default:
			v = genAttrValue(rng)
		}
		n.SetAttr(a.Name, v)
	}
}

// genMixed interleaves text runs with the allowed child elements of a
// mixed-content declaration.
func genMixed(rng *rand.Rand, d *dtd.DTD, decl *dtd.Element, n *xmltree.Node, depth int) {
	k := rng.Intn(4)
	if depth > maxDocDepth {
		k = 0
	}
	allowed := decl.Model.Children
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 {
			n.AppendText(genText(rng))
		}
		if len(allowed) > 0 && rng.Intn(3) != 0 {
			c := allowed[rng.Intn(len(allowed))]
			n.Append(genElem(rng, d, c.Name, depth+1))
		}
	}
	if rng.Intn(2) == 0 {
		n.AppendText(genText(rng))
	}
}

// genParticle appends the expansion of particle p to parent.
func genParticle(rng *rand.Rand, d *dtd.DTD, p *dtd.Particle, parent *xmltree.Node, depth int) {
	deep := depth > maxDocDepth
	var count int
	switch p.Occurs {
	case dtd.One:
		count = 1
	case dtd.Opt:
		if !deep {
			count = rng.Intn(2)
		}
	case dtd.Plus:
		count = 1
		if !deep {
			count += rng.Intn(2)
		}
	case dtd.Star:
		if !deep {
			count = rng.Intn(3)
			if rng.Intn(8) == 0 {
				count += 3 + rng.Intn(5) // occasional burst of repeats
			}
		}
	}
	for rep := 0; rep < count; rep++ {
		switch p.Kind {
		case dtd.PName:
			parent.Append(genElem(rng, d, p.Name, depth+1))
		case dtd.PSeq:
			for _, c := range p.Children {
				genParticle(rng, d, c, parent, depth)
			}
		case dtd.PChoice:
			genParticle(rng, d, p.Children[rng.Intn(len(p.Children))], parent, depth)
		}
	}
}

// serializeEntities renders doc as XML, randomly spelling characters as
// named, decimal, or hexadecimal references so the round-trip through the
// parser exercises entity decoding. Escapable characters are always
// escaped; ordinary characters are occasionally written as numeric
// references too.
func serializeEntities(rng *rand.Rand, doc *xmltree.Document) string {
	var sb strings.Builder
	sb.WriteString("<?xml version=\"1.0\"?>\n")
	writeNodeEnt(rng, &sb, doc.Root)
	return sb.String()
}

func writeNodeEnt(rng *rand.Rand, sb *strings.Builder, n *xmltree.Node) {
	if n.IsText() {
		writeTextEnt(rng, sb, n.Text, false)
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		writeTextEnt(rng, sb, a.Value, true)
		sb.WriteByte('"')
	}
	if len(n.Children) == 0 && rng.Intn(2) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range n.Children {
		writeNodeEnt(rng, sb, c)
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}

func writeTextEnt(rng *rand.Rand, sb *strings.Builder, s string, inAttr bool) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString([...]string{"&lt;", "&#60;", "&#x3C;"}[rng.Intn(3)])
		case '&':
			sb.WriteString([...]string{"&amp;", "&#38;", "&#x26;"}[rng.Intn(3)])
		case '>':
			sb.WriteString([...]string{"&gt;", "&#62;"}[rng.Intn(2)])
		case '"':
			if inAttr {
				sb.WriteString([...]string{"&quot;", "&#34;"}[rng.Intn(2)])
			} else {
				sb.WriteByte('"')
			}
		case '\'':
			if rng.Intn(2) == 0 {
				sb.WriteString("&apos;")
			} else {
				sb.WriteByte('\'')
			}
		default:
			if rng.Intn(50) == 0 {
				if rng.Intn(2) == 0 {
					fmt.Fprintf(sb, "&#%d;", r)
				} else {
					fmt.Fprintf(sb, "&#x%X;", r)
				}
			} else {
				sb.WriteRune(r)
			}
		}
	}
}

// genDocs generates nd conforming documents, serializes each with random
// entity spellings, re-parses the text, and validates the result against d.
// The re-parsed documents are returned (they are what the stores load),
// alongside the serialized texts for failure artifacts.
func genDocs(rng *rand.Rand, d *dtd.DTD, root string, nd int) ([]*xmltree.Document, []string, error) {
	docs := make([]*xmltree.Document, 0, nd)
	texts := make([]string, 0, nd)
	for i := 0; i < nd; i++ {
		doc := genDoc(rng, d, root)
		if err := d.Validate(doc); err != nil {
			return nil, nil, fmt.Errorf("generated document %d does not conform: %w", i, err)
		}
		text := serializeEntities(rng, doc)
		reparsed, err := xmltree.Parse(text)
		if err != nil {
			return nil, nil, fmt.Errorf("generated document %d does not re-parse: %w", i, err)
		}
		if err := d.Validate(reparsed); err != nil {
			return nil, nil, fmt.Errorf("re-parsed document %d does not conform: %w", i, err)
		}
		docs = append(docs, reparsed)
		texts = append(texts, text)
	}
	return docs, texts, nil
}

// docSamples holds values observed in the generated documents; the query
// generator draws predicates from them so that filters actually select rows.
type docSamples struct {
	// texts maps element name -> trimmed direct character data (non-empty).
	texts map[string][]string
	// attrs maps element name + "\x00" + attr name -> observed values.
	attrs map[string][]string
	// count maps element name -> instance count across all documents.
	count map[string]int
}

func attrKey(elem, attr string) string { return elem + "\x00" + attr }

func collectSamples(docs []*xmltree.Document) *docSamples {
	s := &docSamples{
		texts: map[string][]string{},
		attrs: map[string][]string{},
		count: map[string]int{},
	}
	for _, doc := range docs {
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if !n.IsElement() {
				return true
			}
			s.count[n.Name]++
			if t := directText(n); t != "" {
				s.texts[n.Name] = append(s.texts[n.Name], t)
			}
			for _, a := range n.Attrs {
				s.attrs[attrKey(n.Name, a.Name)] = append(s.attrs[attrKey(n.Name, a.Name)], a.Value)
			}
			return true
		})
	}
	return s
}

// directText mirrors the shredder's value extraction: the concatenated
// direct text children, trimmed.
func directText(n *xmltree.Node) string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.IsText() {
			sb.WriteString(c.Text)
		}
	}
	return strings.TrimSpace(sb.String())
}

// alnumWords splits s into maximal runs of letters and digits — the safe
// substring keys for LIKE patterns and findKeyInElm.
func alnumWords(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}
