package difftest

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/xmltree"
)

// buildRecovered builds the crash-recovery member of the matrix: the
// iteration's documents loaded into a WAL-backed XORator store on an
// in-memory filesystem, killed at a seeded fault point (sometimes with a
// torn final write), recovered with OpenRecovered, and resumed to the
// full document set. Everything about the crash — sync policy, fault
// point, tearing — derives from the iteration seed, so a diverging
// iteration replays exactly.
//
// The resulting store must be byte-identical to the uninterrupted
// XORator store: checkAll compares their heaps directly and checkCase
// runs every XORator query against both.
func (st *iterState) buildRecovered(opts Options) error {
	timeline := func(vfs storage.VFS, sync wal.SyncPolicy) error {
		s, err := core.NewStore(st.dtdSrc, core.Config{
			Algorithm:   core.XORator,
			ForceFormat: st.format,
			Engine:      engine.Config{WALDir: "wal", WALSync: sync, VFS: vfs},
		})
		if err != nil {
			return err
		}
		for r := 0; r < opts.LoadRepeat; r++ {
			if err := s.Load(st.docs); err != nil {
				return err
			}
			if r == 0 {
				// Checkpoint between repeats so faults land on both sides
				// of a checkpoint boundary.
				if err := s.Checkpoint(); err != nil {
					return err
				}
			}
		}
		return s.Close()
	}

	rng := rand.New(rand.NewSource(st.seed ^ 0x57a1f00d))
	sync := []wal.SyncPolicy{wal.SyncAlways, wal.SyncBatch, wal.SyncOff}[rng.Intn(3)]

	// Fault-free pass to learn the operation schedule; the crash point is
	// drawn from the window after the first checkpoint publication (its
	// rename), before which there is legitimately nothing to recover.
	counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
	if err := timeline(counter, sync); err != nil {
		return fmt.Errorf("crash twin count pass: %w", err)
	}
	kinds := counter.OpKinds()
	firstCheckpoint := 0
	for i, k := range kinds {
		if k == "rename" {
			firstCheckpoint = i + 1
			break
		}
	}
	if firstCheckpoint == 0 || firstCheckpoint >= len(kinds) {
		return fmt.Errorf("crash twin: no post-checkpoint fault window in %d operations", len(kinds))
	}
	failAt := firstCheckpoint + 1 + rng.Intn(len(kinds)-firstCheckpoint)
	torn := kinds[failAt-1] == "write" && rng.Intn(2) == 0

	mem := storage.NewMemVFS()
	fv := &storage.FaultVFS{Inner: mem, FailAtOp: failAt, Torn: torn}
	err := timeline(fv, sync)
	if err == nil {
		return fmt.Errorf("crash twin: timeline survived its fault at op %d/%d", failAt, len(kinds))
	}
	if !errors.Is(err, storage.ErrCrashed) {
		return fmt.Errorf("crash twin: op %d failed outside the injected fault: %w", failAt, err)
	}

	rec, err := core.OpenRecovered(core.Config{
		ForceFormat: st.format,
		Engine:      engine.Config{WALDir: "wal", WALSync: sync, VFS: mem},
	})
	if err != nil {
		return fmt.Errorf("crash twin: recovery after op %d (%s, torn=%v, sync=%s): %w",
			failAt, kinds[failAt-1], torn, sync, err)
	}
	committed := int(rec.CommittedBatches())
	total := opts.LoadRepeat * len(st.docs)
	if committed > total {
		return fmt.Errorf("crash twin: recovered %d batches from %d documents", committed, total)
	}
	if committed == 0 {
		// No batch committed, so the format decision was never logged:
		// resume with the same Load grouping the twin used, which re-makes
		// the decision over the same sample.
		for r := 0; r < opts.LoadRepeat; r++ {
			if err := rec.Load(st.docs); err != nil {
				return fmt.Errorf("crash twin: resuming load: %w", err)
			}
		}
	} else {
		rest := make([]*xmltree.Document, 0, total-committed)
		for i := committed; i < total; i++ {
			rest = append(rest, st.docs[i%len(st.docs)])
		}
		if len(rest) > 0 {
			if err := rec.Load(rest); err != nil {
				return fmt.Errorf("crash twin: resuming load: %w", err)
			}
		}
	}
	if err := rec.CreateDefaultIndexes(); err != nil {
		return fmt.Errorf("crash twin: %w", err)
	}
	if err := rec.RunStats(); err != nil {
		return fmt.Errorf("crash twin: %w", err)
	}
	if err := rec.Close(); err != nil {
		return fmt.Errorf("crash twin: %w", err)
	}
	st.recovered = rec
	return nil
}
