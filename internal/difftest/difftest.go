package difftest

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/plan"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// Options configures a differential run. The zero value of every field
// selects a sensible default, so Options{Seed: 1, Iters: 200} is a
// complete configuration.
type Options struct {
	// Seed is the base seed; iteration i uses Seed+i, so any failing
	// iteration replays alone as {Seed: failingSeed, Iters: 1}.
	Seed int64
	// Iters is the number of iterations (default 50).
	Iters int
	// Docs is the number of documents generated per iteration (default 4).
	Docs int
	// LoadRepeat loads the document set this many times into every store
	// (default 8); it grows tables past one morsel so the DOP axis
	// exercises real multi-worker parallelism.
	LoadRepeat int
	// DOP is the parallel degree of the DOP-N cells (default 4).
	DOP int
	// Crash adds the crash-recovery axis: each iteration also loads the
	// documents into a WAL-backed XORator store that is crashed at a
	// seeded fault point, recovered, and resumed — its heap must be
	// byte-identical to the uninterrupted store and every XORator query
	// must agree on it.
	Crash bool
	// MemBudget, when > 0, adds the memory-budget axis: every query
	// reruns under this per-query budget (spilling through an in-memory
	// VFS), serially and at DOP, and must return exactly the unlimited
	// run's rows on both mappings. Pick it small (a few KiB) so sorts,
	// join builds, and aggregates actually spill.
	MemBudget int64
	// CostModel adds the cost-model axis: every query reruns with the
	// cost-based optimizer disabled (the greedy pre-statistics planner),
	// with statistics invalidated, and with statistics forced stale under
	// DisableAutoStats. Plans may legitimately differ across these cells
	// — that is the point — so rows compare as multisets, except for
	// cases whose ORDER BY covers every projected column (Case.Ordered),
	// which must match the reference byte for byte.
	CostModel bool
	// Ops is the number of random mutations each mutation-history
	// iteration applies (RunMutation only; default 40), and the number
	// of schedule steps per concurrent iteration (RunConcurrent).
	Ops int
	// Sessions bounds how many snapshot sessions a concurrent schedule
	// keeps open at once (RunConcurrent only; default 3).
	Sessions int
	// FailFast stops at the first diverging iteration.
	FailFast bool
	// ArtifactPath receives the failure artifact (default
	// "difftest_failure.txt").
	ArtifactPath string
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (o *Options) setDefaults() {
	if o.Iters <= 0 {
		o.Iters = 50
	}
	if o.Docs <= 0 {
		o.Docs = 4
	}
	if o.LoadRepeat <= 0 {
		o.LoadRepeat = 8
	}
	if o.DOP <= 0 {
		o.DOP = 4
	}
	if o.Ops <= 0 {
		o.Ops = 40
	}
	if o.Sessions <= 0 {
		o.Sessions = 3
	}
	if o.ArtifactPath == "" {
		o.ArtifactPath = "difftest_failure.txt"
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// Divergence is one cell of the matrix whose rows did not match its
// reference cell.
type Divergence struct {
	Iter   int
	Seed   int64
	Case   Case
	Axis   string
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("seed %d case %s axis %s: %s", d.Seed, d.Case.Name, d.Axis, d.Detail)
}

// Summary aggregates a run.
type Summary struct {
	Iters       int
	Cases       int
	Cells       int
	Divergences []Divergence
	// Artifact is the path of the written failure artifact, empty if the
	// run was clean.
	Artifact string
}

// Run executes the differential matrix and returns its summary. A non-nil
// error means the harness itself failed (generator bug, store build or
// query error); divergences are reported in the summary, not as errors.
func Run(opts Options) (*Summary, error) {
	opts.setDefaults()
	sum := &Summary{}
	for iter := 0; iter < opts.Iters; iter++ {
		seed := opts.Seed + int64(iter)
		st, err := buildIteration(opts, seed)
		if err != nil {
			return sum, fmt.Errorf("iteration %d (seed %d): %w", iter, seed, err)
		}
		divs, cells, err := checkAll(opts, st)
		if err != nil {
			return sum, fmt.Errorf("iteration %d (seed %d): %w", iter, seed, err)
		}
		sum.Iters++
		sum.Cases += len(st.cases)
		sum.Cells += cells
		if len(divs) > 0 {
			for i := range divs {
				divs[i].Iter, divs[i].Seed = iter, seed
			}
			sum.Divergences = append(sum.Divergences, divs...)
			fmt.Fprintf(opts.Log, "difftest: iteration %d (seed %d) diverged: %s\n", iter, seed, divs[0].Detail)
			if sum.Artifact == "" {
				texts := minimize(opts, st, divs[0])
				if err := writeArtifact(opts, st, divs[0], texts); err != nil {
					fmt.Fprintf(opts.Log, "difftest: writing artifact: %v\n", err)
				} else {
					sum.Artifact = opts.ArtifactPath
				}
			}
			if opts.FailFast {
				break
			}
		}
		if (iter+1)%25 == 0 {
			fmt.Fprintf(opts.Log, "difftest: %d/%d iterations, %d cases, %d cells, %d divergences\n",
				iter+1, opts.Iters, sum.Cases, sum.Cells, len(sum.Divergences))
		}
	}
	return sum, nil
}

// iterState is everything one iteration built, kept so a divergence can be
// minimized and rendered into the failure artifact.
type iterState struct {
	seed   int64
	dtdSrc string
	root   string
	docs   []*xmltree.Document
	texts  []string
	format *xadt.Format
	cases  []Case

	hy, xo, legacy *core.Store
	// recovered is the crash-recovered XORator twin, present only when
	// Options.Crash is set.
	recovered *core.Store
}

// buildIteration derives the iteration's DTD, documents, twin stores, and
// query suite from its seed.
func buildIteration(opts Options, seed int64) (*iterState, error) {
	rng := rand.New(rand.NewSource(seed))
	st := &iterState{seed: seed, root: "E0"}
	st.dtdSrc = genDTD(rng)
	d, err := dtd.Parse(st.dtdSrc)
	if err != nil {
		return nil, fmt.Errorf("generated DTD does not parse: %w\n%s", err, st.dtdSrc)
	}
	st.docs, st.texts, err = genDocs(rng, d, st.root, opts.Docs)
	if err != nil {
		return nil, err
	}
	switch rng.Intn(3) {
	case 0: // let the store sample and choose
	case 1:
		f := xadt.Raw
		st.format = &f
	default:
		f := xadt.Compressed
		st.format = &f
	}
	if err := st.build(opts); err != nil {
		return nil, err
	}
	samp := collectSamples(st.docs)
	st.cases = generateCases(rng, st.hy.Schema, st.xo.Schema, st.hy.Simplified, samp, opts.LoadRepeat)
	return st, nil
}

// build creates the three stores — Hybrid, XORator, and the headerless
// legacy XORator twin — and loads the document set into each.
func (st *iterState) build(opts Options) error {
	mk := func(alg core.Algorithm, legacy bool) (*core.Store, error) {
		cfg := core.Config{Algorithm: alg, ForceFormat: st.format, DisableXADTHeaders: legacy}
		s, err := core.NewStore(st.dtdSrc, cfg)
		if err != nil {
			return nil, err
		}
		for r := 0; r < opts.LoadRepeat; r++ {
			if err := s.Load(st.docs); err != nil {
				return nil, err
			}
		}
		if err := s.CreateDefaultIndexes(); err != nil {
			return nil, err
		}
		if err := s.RunStats(); err != nil {
			return nil, err
		}
		return s, nil
	}
	var err error
	if st.hy, err = mk(core.Hybrid, false); err != nil {
		return fmt.Errorf("hybrid store: %w", err)
	}
	if st.xo, err = mk(core.XORator, false); err != nil {
		return fmt.Errorf("xorator store: %w", err)
	}
	if st.legacy, err = mk(core.XORator, true); err != nil {
		return fmt.Errorf("legacy xorator store: %w", err)
	}
	if opts.Crash {
		if err := st.buildRecovered(opts); err != nil {
			return err
		}
	}
	return nil
}

func checkAll(opts Options, st *iterState) ([]Divergence, int, error) {
	var divs []Divergence
	cells := 0
	if st.recovered != nil {
		// The recovered store's heaps must be indistinguishable from the
		// store that never crashed, before any query runs.
		cells++
		if err := CompareStores(st.recovered, st.xo); err != nil {
			divs = append(divs, Divergence{Case: Case{Name: "(recovered state)"},
				Axis: "xorator:recovered-state", Detail: err.Error()})
		}
	}
	for _, c := range st.cases {
		ds, n, err := checkCase(opts, st, c)
		cells += n
		if err != nil {
			return nil, cells, fmt.Errorf("case %s: %w", c.Name, err)
		}
		divs = append(divs, ds...)
	}
	return divs, cells, nil
}

// checkCase executes one case across the matrix. Within a store, every
// cell must match the serial fast-path reference exactly (same rows, same
// order); the crash-recovered twin holds byte-identical data, so its
// cells are held to the same exact standard. The legacy twin stores
// different XADT bytes, so its cells
// compare after canonicalizing fragments to their text; the cross-mapping
// cell compares canonicalized row multisets, because the two mappings may
// plan different row orders.
func checkCase(opts Options, st *iterState, c Case) ([]Divergence, int, error) {
	var divs []Divergence
	cells := 0
	record := func(axis, detail string) {
		divs = append(divs, Divergence{Case: c, Axis: axis, Detail: detail})
	}
	type cellSpec struct {
		axis string
		o    plan.Options
		fast bool
	}
	// The serial reference runs the default engine, which vectorizes
	// every capable subtree; the rowengine cells disable that and must
	// match byte-for-byte — the batch/row differential axis. Parallel
	// cells disable the small-input gate (MinParallelPages: -1) so the
	// tiny generated tables still produce genuinely parallel plans.
	serial := plan.Options{DOP: 1}
	par := plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1}
	rowSerial := plan.Options{DOP: 1, DisableVectorized: true}
	rowPar := plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1, DisableVectorized: true}
	// Index cells: the reference runs with the XADT fragment indexes on
	// (stores build them by default), so the noindex cells are the
	// index-on vs index-off differential axis — an indexed plan must
	// return byte-identical rows to the scan it replaced.
	noIdx := plan.Options{DOP: 1, DisableXADTIndexes: true}
	noIdxPar := plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1, DisableXADTIndexes: true}
	// Budget cells spill through one shared in-memory VFS; spill file
	// names are globally unique, so cells never collide.
	var budget, budgetPar, budgetRow plan.Options
	if opts.MemBudget > 0 {
		spillFS := storage.NewMemVFS()
		budget = plan.Options{DOP: 1, MemBudgetBytes: opts.MemBudget, SpillVFS: spillFS}
		budgetPar = plan.Options{DOP: opts.DOP, MorselPages: 1, MinParallelPages: -1, MemBudgetBytes: opts.MemBudget, SpillVFS: spillFS}
		budgetRow = plan.Options{DOP: 1, MemBudgetBytes: opts.MemBudget, SpillVFS: spillFS, DisableVectorized: true}
	}
	run := func(s *core.Store, o plan.Options, fast bool, sql string) (*engine.Result, error) {
		s.DB.SetXADTFastPath(fast)
		s.DB.SetPlannerOptions(o)
		defer func() {
			s.DB.SetXADTFastPath(true)
			s.DB.SetPlannerOptions(serial)
		}()
		res, err := s.Query(sql)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", sql, err)
		}
		return res, nil
	}

	var hyRef, xoRef *engine.Result
	if c.Hybrid != "" {
		ref, err := run(st.hy, serial, true, c.Hybrid)
		if err != nil {
			return divs, cells, fmt.Errorf("hybrid %w", err)
		}
		hyRef = ref
		hyCells := []cellSpec{
			{"hybrid:dop", par, true},
			{"hybrid:rowengine", rowSerial, true},
			{"hybrid:rowengine+dop", rowPar, true},
			{"hybrid:noindex", noIdx, true},
			{"hybrid:noindex+dop", noIdxPar, true},
		}
		if opts.MemBudget > 0 {
			hyCells = append(hyCells,
				cellSpec{"hybrid:membudget", budget, true},
				cellSpec{"hybrid:membudget+dop", budgetPar, true},
				cellSpec{"hybrid:rowengine+membudget", budgetRow, true})
		}
		for _, cell := range hyCells {
			got, err := run(st.hy, cell.o, cell.fast, c.Hybrid)
			if err != nil {
				return divs, cells, fmt.Errorf("hybrid %w", err)
			}
			cells++
			if !sameRows(ref.Rows, got.Rows) {
				record(cell.axis, diffRows(ref.Rows, got.Rows))
			}
		}
	}
	if c.XORator != "" {
		ref, err := run(st.xo, serial, true, c.XORator)
		if err != nil {
			return divs, cells, fmt.Errorf("xorator %w", err)
		}
		xoRef = ref
		xoCells := []cellSpec{
			{"xorator:dop", par, true},
			{"xorator:rowengine", rowSerial, true},
			{"xorator:rowengine+dop", rowPar, true},
			{"xorator:fastpath", serial, false},
			{"xorator:fastpath+dop", par, false},
			{"xorator:noindex", noIdx, true},
			{"xorator:noindex+dop", noIdxPar, true},
		}
		if opts.MemBudget > 0 {
			xoCells = append(xoCells,
				cellSpec{"xorator:membudget", budget, true},
				cellSpec{"xorator:membudget+dop", budgetPar, true},
				cellSpec{"xorator:rowengine+membudget", budgetRow, true})
		}
		for _, cell := range xoCells {
			got, err := run(st.xo, cell.o, cell.fast, c.XORator)
			if err != nil {
				return divs, cells, fmt.Errorf("xorator %w", err)
			}
			cells++
			if !sameRows(ref.Rows, got.Rows) {
				record(cell.axis, diffRows(ref.Rows, got.Rows))
			}
		}
		if st.recovered != nil {
			for _, cell := range []struct {
				axis string
				o    plan.Options
			}{
				{"xorator:recovered", serial},
				{"xorator:recovered+dop", par},
				{"xorator:recovered+noindex", noIdx},
			} {
				got, err := run(st.recovered, cell.o, true, c.XORator)
				if err != nil {
					return divs, cells, fmt.Errorf("recovered xorator %w", err)
				}
				cells++
				if !sameRows(ref.Rows, got.Rows) {
					record(cell.axis, diffRows(ref.Rows, got.Rows))
				}
			}
		}
		for _, cell := range []struct {
			axis string
			o    plan.Options
		}{
			{"xorator:legacy", serial},
			{"xorator:legacy+dop", par},
			{"xorator:legacy+noindex", noIdx},
		} {
			got, err := run(st.legacy, cell.o, true, c.XORator)
			if err != nil {
				return divs, cells, fmt.Errorf("legacy xorator %w", err)
			}
			cells++
			a, b := canonRows(ref.Rows), canonRows(got.Rows)
			if !equalStrings(a, b) {
				record(cell.axis, diffCanon(a, b))
			}
		}
	}
	if opts.CostModel {
		n, err := checkCostModelCells(opts, st, c, hyRef, xoRef, run, record)
		cells += n
		if err != nil {
			return divs, cells, err
		}
	}
	if c.Cross && hyRef != nil && xoRef != nil {
		cells++
		a, b := sortedCanon(hyRef.Rows), sortedCanon(xoRef.Rows)
		if !equalStrings(a, b) {
			record("cross-mapping", diffCanon(a, b))
		}
	}
	return divs, cells, nil
}

// checkCostModelCells runs the cost-model axis of one case: the greedy
// pre-statistics planner, the estimator with no statistics at all, and
// the estimator with statistics forced stale under DisableAutoStats.
// These cells may legitimately plan different join orders, so rows
// compare as multisets — except Ordered cases, whose ORDER BY covers
// every projected column and therefore must match exactly. Statistics
// are restored with a fresh RunStats after each perturbation, which is
// deterministic over the unchanged heap.
func checkCostModelCells(opts Options, st *iterState, c Case, hyRef, xoRef *engine.Result,
	run func(*core.Store, plan.Options, bool, string) (*engine.Result, error),
	record func(axis, detail string)) (int, error) {
	cells := 0
	compare := func(axis string, ref, got *engine.Result) {
		if c.Ordered {
			if !sameRows(ref.Rows, got.Rows) {
				record(axis, diffRows(ref.Rows, got.Rows))
			}
			return
		}
		a, b := sortedCanon(ref.Rows), sortedCanon(got.Rows)
		if !equalStrings(a, b) {
			record(axis, diffCanon(a, b))
		}
	}
	type target struct {
		label string
		s     *core.Store
		sql   string
		ref   *engine.Result
	}
	var targets []target
	if hyRef != nil {
		targets = append(targets, target{"hybrid", st.hy, c.Hybrid, hyRef})
	}
	if xoRef != nil {
		targets = append(targets, target{"xorator", st.xo, c.XORator, xoRef})
	}
	serial := plan.Options{DOP: 1}
	greedy := plan.Options{DOP: 1, DisableCostModel: true}
	stale := plan.Options{DOP: 1, DisableAutoStats: true}
	for _, tg := range targets {
		got, err := run(tg.s, greedy, true, tg.sql)
		if err != nil {
			return cells, fmt.Errorf("%s greedy %w", tg.label, err)
		}
		cells++
		compare(tg.label+":greedy", tg.ref, got)

		// No statistics: the planner must fall back to defaults (it never
		// auto-analyzes a table without stats) and still return the same
		// rows.
		tg.s.DB.Catalog.InvalidateStats()
		got, err = run(tg.s, serial, true, tg.sql)
		if rerr := tg.s.RunStats(); rerr != nil {
			return cells, fmt.Errorf("%s restoring stats: %w", tg.label, rerr)
		}
		if err != nil {
			return cells, fmt.Errorf("%s nostats %w", tg.label, err)
		}
		cells++
		compare(tg.label+":nostats", tg.ref, got)

		// Stale statistics with auto-refresh disabled: the estimator must
		// distrust the drifted histograms, not crash on them.
		for _, name := range tg.s.DB.Catalog.TableNames() {
			t := tg.s.DB.Catalog.Table(name)
			t.AdvanceMods(int64(t.Rows()) + 1)
		}
		got, err = run(tg.s, stale, true, tg.sql)
		if rerr := tg.s.RunStats(); rerr != nil {
			return cells, fmt.Errorf("%s restoring stats: %w", tg.label, rerr)
		}
		if err != nil {
			return cells, fmt.Errorf("%s stale %w", tg.label, err)
		}
		cells++
		compare(tg.label+":stale", tg.ref, got)
	}
	return cells, nil
}

// ---- row comparison -------------------------------------------------------

func sameRows(a, b [][]types.Value) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// canonValue renders a value so that equal logical content compares equal
// regardless of its stored representation: XADT fragments render as their
// text, everything else via types.Value.String.
func canonValue(v types.Value) string {
	if v.Kind() == types.KindXADT {
		t, err := core.FragmentText(v)
		if err != nil {
			return "xadt-error:" + err.Error()
		}
		return "x:" + t
	}
	return v.String()
}

func canonRows(rows [][]types.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = canonValue(v)
		}
		out[i] = strings.Join(parts, "\x1f")
	}
	return out
}

func sortedCanon(rows [][]types.Value) []string {
	out := canonRows(rows)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clip(s string) string {
	if len(s) > 120 {
		return s[:120] + "…"
	}
	return s
}

func diffCanon(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("row count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("row %d: %q vs %q", i, clip(a[i]), clip(b[i]))
		}
	}
	return "rows differ"
}

func diffRows(a, b [][]types.Value) string {
	return diffCanon(canonRows(a), canonRows(b))
}

// ---- minimization and the failure artifact --------------------------------

// minimize re-runs the failing case on progressively smaller document
// subsets, keeping every removal that preserves a divergence on the same
// axis, and returns the serialized texts of the surviving documents.
func minimize(opts Options, st *iterState, d Divergence) []string {
	docs, texts := st.docs, st.texts
	for i := len(docs) - 1; i >= 0 && len(docs) > 1; i-- {
		tryDocs := make([]*xmltree.Document, 0, len(docs)-1)
		tryDocs = append(append(tryDocs, docs[:i]...), docs[i+1:]...)
		tryTexts := make([]string, 0, len(texts)-1)
		tryTexts = append(append(tryTexts, texts[:i]...), texts[i+1:]...)
		sub := &iterState{seed: st.seed, dtdSrc: st.dtdSrc, root: st.root,
			docs: tryDocs, texts: tryTexts, format: st.format}
		if err := sub.build(opts); err != nil {
			continue
		}
		divs, _, err := checkCase(opts, sub, d.Case)
		if err != nil {
			continue
		}
		for _, sd := range divs {
			if sd.Axis == d.Axis {
				docs, texts = tryDocs, tryTexts
				break
			}
		}
	}
	return texts
}

func writeArtifact(opts Options, st *iterState, d Divergence, texts []string) error {
	var sb strings.Builder
	sb.WriteString("# difftest divergence artifact\n")
	fmt.Fprintf(&sb, "# replay: go run ./cmd/repro -exp difftest -seed %d -iters 1\n", d.Seed)
	fmt.Fprintf(&sb, "seed: %d\niteration: %d\ncase: %s\naxis: %s\ndetail: %s\n",
		d.Seed, d.Iter, d.Case.Name, d.Axis, d.Detail)
	if st.format != nil {
		fmt.Fprintf(&sb, "xadt format: %v\n", *st.format)
	}
	fmt.Fprintf(&sb, "load repeat: %d, dop: %d\n", opts.LoadRepeat, opts.DOP)
	if opts.MemBudget > 0 {
		fmt.Fprintf(&sb, "mem budget: %d bytes\n", opts.MemBudget)
	}
	hsql, xsql := d.Case.Hybrid, d.Case.XORator
	if hsql == "" {
		hsql = "(not expressible)"
	}
	if xsql == "" {
		xsql = "(not expressible)"
	}
	fmt.Fprintf(&sb, "\n--- hybrid SQL ---\n%s\n\n--- xorator SQL ---\n%s\n\n--- DTD ---\n%s",
		hsql, xsql, st.dtdSrc)
	for i, t := range texts {
		fmt.Fprintf(&sb, "\n--- document %d of %d (minimized) ---\n%s\n", i+1, len(texts), t)
	}
	return os.WriteFile(opts.ArtifactPath, []byte(sb.String()), 0o644)
}
