package difftest

import (
	"path/filepath"
	"testing"

	"repro/internal/testutil"
)

// TestConcurrentDifferentialSmoke runs short seeded concurrent
// schedules — interleaved snapshot transactions plus direct autocommit
// ops against the serial oracle — and requires every predicted outcome
// (affected counts, conflict decisions, state sweeps, the final byte
// comparison, and crash recovery) to hold.
func TestConcurrentDifferentialSmoke(t *testing.T) {
	seed := testutil.Seed(t, 1)
	sum, err := RunConcurrent(Options{
		Seed:         seed,
		Iters:        6,
		Ops:          30,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	if sum.Cells == 0 {
		t.Fatal("no concurrent cells executed")
	}
	t.Logf("%d iterations, %d cells, all agreed", sum.Iters, sum.Cells)
}

// TestConcurrentSchedules500 is the acceptance run: 500 seeded
// schedules with interleaved transactions, each checked end to end
// against the oracle, including conflict outcomes and recovery.
func TestConcurrentSchedules500(t *testing.T) {
	if testing.Short() {
		t.Skip("500 schedules skipped in -short mode")
	}
	seed := testutil.Seed(t, 1)
	sum, err := RunConcurrent(Options{
		Seed:         seed,
		Iters:        500,
		Ops:          25,
		Docs:         2,
		ArtifactPath: filepath.Join(t.TempDir(), "artifact.txt"),
	})
	if err != nil {
		t.Fatalf("harness error: %v (%s)", err, testutil.ReproLine(t, seed))
	}
	if len(sum.Divergences) > 0 {
		t.Fatalf("%d divergences, first: %s (%s)",
			len(sum.Divergences), sum.Divergences[0], testutil.ReproLine(t, seed))
	}
	t.Logf("%d schedules, %d cells, all agreed", sum.Iters, sum.Cells)
}
