// Package datagen produces the two synthetic corpora of the evaluation:
// a 37-play Shakespeare-like data set conforming to the Figure 10 DTD
// (standing in for Bosak's corpus) and a SIGMOD-Proceedings data set
// conforming to the Figure 12 DTD (standing in for the IBM XML
// Generator's output). Both generators are deterministic given a seed and
// plant the entity names and keywords the paper's queries select on.
package datagen

import "math/rand"

// vocabulary is a pool of period-flavored words used to build line and
// title text.
var vocabulary = []string{
	"thou", "thee", "thy", "hath", "doth", "wherefore", "anon", "prithee",
	"sweet", "noble", "gentle", "fair", "good", "brave", "valiant", "cruel",
	"night", "day", "morrow", "sun", "moon", "star", "heaven", "earth",
	"king", "queen", "lord", "lady", "prince", "duke", "knight", "crown",
	"sword", "blood", "heart", "soul", "eye", "hand", "tongue", "ear",
	"speak", "hear", "come", "go", "stay", "fly", "live", "die",
	"honor", "grace", "virtue", "sorrow", "joy", "grief", "fear", "hope",
	"ghost", "shadow", "dream", "sleep", "wake", "watch", "guard", "gate",
	"castle", "tower", "field", "forest", "sea", "storm", "wind", "fire",
	"letter", "message", "news", "word", "tale", "song", "play", "scene",
}

// names is the speaker-name pool; ROMEO, JULIET and HAMLET are planted so
// the workload's selections are non-empty.
var names = []string{
	"ROMEO", "JULIET", "HAMLET", "HORATIO", "MERCUTIO", "TYBALT", "BENVOLIO",
	"OPHELIA", "CLAUDIUS", "GERTRUDE", "POLONIUS", "LAERTES", "MACBETH",
	"BANQUO", "DUNCAN", "MALCOLM", "OTHELLO", "IAGO", "CASSIO", "DESDEMONA",
	"LEAR", "CORDELIA", "REGAN", "GONERIL", "EDMUND", "EDGAR", "KENT",
	"PROSPERO", "ARIEL", "CALIBAN", "MIRANDA", "FERDINAND", "ANTONIO",
	"SEBASTIAN", "VIOLA", "ORSINO", "OLIVIA", "MALVOLIO", "FESTE", "TOBY",
}

// surnames builds author names for the SIGMOD generator; "Worthy" and
// "Bird" are planted for queries QG3 and QG5.
var surnames = []string{
	"Smith", "Jones", "Gray", "Codd", "Stone", "Rivers", "Brook", "Hill",
	"Ward", "Knight", "Page", "Worthy", "Bird", "Lake", "Field", "Wood",
	"March", "Frost", "Snow", "Rain", "Day", "Knightley", "Marsh", "Dale",
}

// firstNames pairs with surnames for author names.
var firstNames = []string{
	"Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Henry",
	"Irene", "Jack", "Karen", "Liam", "Mona", "Nina", "Oscar", "Paula",
}

// topicWords builds paper titles; "Join" is planted for QG1 and QG6.
var topicWords = []string{
	"Query", "Optimization", "Index", "Storage", "Transaction", "Recovery",
	"Join", "Aggregation", "Parallel", "Distributed", "Semistructured",
	"XML", "Relational", "Object", "Cache", "Buffer", "Stream", "Mining",
	"Warehouse", "Benchmark", "Cost", "Model", "Schema", "View",
}

// sentence builds a space-separated phrase of n vocabulary words,
// appending each extra keyword.
func sentence(rng *rand.Rand, n int, keywords ...string) string {
	buf := make([]byte, 0, n*6+16)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, vocabulary[rng.Intn(len(vocabulary))]...)
	}
	for _, kw := range keywords {
		buf = append(buf, ' ')
		buf = append(buf, kw...)
	}
	return string(buf)
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, items []T) T {
	return items[rng.Intn(len(items))]
}

// between returns a random int in [lo, hi].
func between(rng *rand.Rand, lo, hi int) int {
	return lo + rng.Intn(hi-lo+1)
}
