package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// SigmodConfig sizes the SIGMOD-Proceedings generator. The defaults
// approximate the paper's synthetic data set: 3000 documents, ~12 MB.
type SigmodConfig struct {
	// Documents is the number of PP documents.
	Documents int
	// Seed drives the deterministic generator.
	Seed int64
	// SectionsPerDoc and ArticlesPerSection are [min, max] ranges.
	SectionsPerDoc     [2]int
	ArticlesPerSection [2]int
	AuthorsPerArticle  [2]int
}

// DefaultSigmodConfig returns the paper-scale configuration.
func DefaultSigmodConfig() SigmodConfig {
	return SigmodConfig{
		Documents:          3000,
		Seed:               1999,
		SectionsPerDoc:     [2]int{2, 4},
		ArticlesPerSection: [2]int{2, 5},
		AuthorsPerArticle:  [2]int{1, 4},
	}
}

// conferences and locations flesh out the PP header elements.
var conferences = []string{
	"SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "CIKM",
}

var locations = []string{
	"San Jose, California", "Edinburgh, Scotland", "Cairo, Egypt",
	"Dallas, Texas", "Santa Barbara, California", "Rome, Italy",
	"Madison, Wisconsin", "Seattle, Washington",
}

var sectionNames = []string{
	"Query Processing", "Storage Systems", "Data Mining", "XML and Web Data",
	"Transaction Management", "Indexing", "Distributed Systems",
	"Benchmarking and Performance", "Semistructured Data", "Optimization",
}

// GenerateSigmod produces the proceedings corpus as parsed documents.
func GenerateSigmod(cfg SigmodConfig) []*xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	docs := make([]*xmltree.Document, cfg.Documents)
	for i := range docs {
		docs[i] = &xmltree.Document{
			DoctypeName: "PP",
			Root:        generateProceedings(rng, cfg, i),
		}
	}
	return docs
}

func generateProceedings(rng *rand.Rand, cfg SigmodConfig, idx int) *xmltree.Node {
	pp := xmltree.NewElement("PP")
	year := 1975 + idx%28
	appendTextElem(pp, "volume", fmt.Sprintf("%d", 1+idx%30))
	appendTextElem(pp, "number", fmt.Sprintf("%d", 1+idx%4))
	appendTextElem(pp, "month", []string{"March", "June", "September", "December"}[idx%4])
	appendTextElem(pp, "year", fmt.Sprintf("%d", year))
	appendTextElem(pp, "conference", pick(rng, conferences))
	appendTextElem(pp, "date", fmt.Sprintf("%d-%02d-01", year, 3*(idx%4)+1))
	appendTextElem(pp, "confyear", fmt.Sprintf("%d", year))
	appendTextElem(pp, "location", pick(rng, locations))

	sList := xmltree.NewElement("sList")
	nsec := between(rng, cfg.SectionsPerDoc[0], cfg.SectionsPerDoc[1])
	page := 1
	for s := 0; s < nsec; s++ {
		tuple := xmltree.NewElement("sListTuple")
		sn := xmltree.NewElement("sectionName")
		sn.SetAttr("SectionPosition", fmt.Sprintf("%d", s+1))
		sn.AppendText(pick(rng, sectionNames))
		tuple.Append(sn)

		articles := xmltree.NewElement("articles")
		narts := between(rng, cfg.ArticlesPerSection[0], cfg.ArticlesPerSection[1])
		for a := 0; a < narts; a++ {
			articles.Append(generateArticle(rng, cfg, &page))
		}
		tuple.Append(articles)
		sList.Append(tuple)
	}
	pp.Append(sList)
	return pp
}

// generateArticle builds one aTuple. Titles include "Join" at roughly the
// rate a proceedings would (one topic word in ~24 is "Join"); author
// names draw from a surname pool that includes "Worthy" and "Bird".
func generateArticle(rng *rand.Rand, cfg SigmodConfig, page *int) *xmltree.Node {
	at := xmltree.NewElement("aTuple")

	title := xmltree.NewElement("title")
	title.SetAttr("articleCode", fmt.Sprintf("A%06d", rng.Intn(1000000)))
	words := between(rng, 3, 6)
	text := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			text += " "
		}
		text += pick(rng, topicWords)
	}
	title.AppendText(text)
	at.Append(title)

	authors := xmltree.NewElement("authors")
	nauth := between(rng, cfg.AuthorsPerArticle[0], cfg.AuthorsPerArticle[1])
	for i := 0; i < nauth; i++ {
		author := xmltree.NewElement("author")
		author.SetAttr("AuthorPosition", fmt.Sprintf("%d", i+1))
		author.AppendText(pick(rng, firstNames) + " " + pick(rng, surnames))
		authors.Append(author)
	}
	at.Append(authors)

	length := between(rng, 8, 24)
	appendTextElem(at, "initPage", fmt.Sprintf("%d", *page))
	appendTextElem(at, "endPage", fmt.Sprintf("%d", *page+length))
	*page += length + 1

	toindex := xmltree.NewElement("Toindex")
	if rng.Intn(3) > 0 {
		index := xmltree.NewElement("index")
		index.SetAttr("href", fmt.Sprintf("http://index.example.org/%d", rng.Intn(100000)))
		index.AppendText(fmt.Sprintf("IX%05d", rng.Intn(100000)))
		toindex.Append(index)
	}
	at.Append(toindex)

	fullText := xmltree.NewElement("fullText")
	if rng.Intn(3) > 0 {
		size := xmltree.NewElement("size")
		size.SetAttr("href", fmt.Sprintf("http://ft.example.org/%d.pdf", rng.Intn(100000)))
		size.AppendText(fmt.Sprintf("%d", between(rng, 100, 4000)))
		fullText.Append(size)
	}
	at.Append(fullText)
	return at
}
