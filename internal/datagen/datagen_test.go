package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// validate checks a document against the full DTD content models using
// the dtd package's validator.
func validate(t *testing.T, d *dtd.DTD, doc *xmltree.Document) {
	t.Helper()
	if err := d.Validate(doc); err != nil {
		t.Fatalf("generated document is invalid: %v", err)
	}
}

func smallPlayConfig() PlayConfig {
	cfg := DefaultPlayConfig()
	cfg.Plays = 5
	return cfg
}

func TestPlaysConformToDTD(t *testing.T) {
	d, err := dtd.Parse(corpus.ShakespeareDTD)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range GeneratePlays(smallPlayConfig()) {
		validate(t, d, doc)
	}
}

func TestPlaysDeterministic(t *testing.T) {
	a := GeneratePlays(smallPlayConfig())
	b := GeneratePlays(smallPlayConfig())
	for i := range a {
		if xmltree.Serialize(a[i].Root) != xmltree.Serialize(b[i].Root) {
			t.Fatalf("play %d differs between runs", i)
		}
	}
}

func TestPlaysPlantQueryTargets(t *testing.T) {
	docs := GeneratePlays(smallPlayConfig())
	var romeo *xmltree.Document
	for _, d := range docs {
		if d.Root.FirstChildNamed("TITLE").InnerText() == "Romeo and Juliet" {
			romeo = d
		}
	}
	if romeo == nil {
		t.Fatal("no Romeo and Juliet play")
	}
	text := xmltree.Serialize(romeo.Root)
	for _, want := range []string{"ROMEO", "love"} {
		if !strings.Contains(text, want) {
			t.Errorf("Romeo play missing %q", want)
		}
	}
	all := ""
	for _, d := range docs {
		all += xmltree.Serialize(d.Root)
	}
	for _, want := range []string{"HAMLET", "friend", "Rising", "<PROLOGUE>", "<STAGEDIR>"} {
		if !strings.Contains(all, want) {
			t.Errorf("corpus missing %q", want)
		}
	}
}

func TestPlaysMixedContentLines(t *testing.T) {
	docs := GeneratePlays(smallPlayConfig())
	found := false
	for _, d := range docs {
		d.Root.Walk(func(n *xmltree.Node) bool {
			if n.Name == "LINE" && n.FirstChildNamed("STAGEDIR") != nil {
				found = true
			}
			return !found
		})
	}
	if !found {
		t.Error("no LINE with embedded STAGEDIR generated")
	}
}

func TestPlaysCorpusScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	docs := GeneratePlays(DefaultPlayConfig())
	if len(docs) != 37 {
		t.Fatalf("plays = %d", len(docs))
	}
	size := CorpusSize(docs)
	// Target ~7.5 MB, accept a generous band.
	if size < 5_000_000 || size > 11_000_000 {
		t.Errorf("corpus size = %d bytes, want ~7.5MB", size)
	}
}

func TestPlaysRoundTripParse(t *testing.T) {
	docs := GeneratePlays(smallPlayConfig())
	text := xmltree.Serialize(docs[0].Root)
	doc, err := xmltree.Parse(text)
	if err != nil {
		t.Fatalf("generated play does not reparse: %v", err)
	}
	if xmltree.Serialize(doc.Root) != text {
		t.Error("reparse not stable")
	}
}

func smallSigmodConfig() SigmodConfig {
	cfg := DefaultSigmodConfig()
	cfg.Documents = 20
	return cfg
}

func TestSigmodConformsToDTD(t *testing.T) {
	d, err := dtd.Parse(corpus.SigmodDTD)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range GenerateSigmod(smallSigmodConfig()) {
		validate(t, d, doc)
	}
}

func TestSigmodDeterministic(t *testing.T) {
	a := GenerateSigmod(smallSigmodConfig())
	b := GenerateSigmod(smallSigmodConfig())
	for i := range a {
		if xmltree.Serialize(a[i].Root) != xmltree.Serialize(b[i].Root) {
			t.Fatalf("document %d differs between runs", i)
		}
	}
}

func TestSigmodPlantsQueryTargets(t *testing.T) {
	docs := GenerateSigmod(smallSigmodConfig())
	all := ""
	for _, d := range docs {
		all += xmltree.Serialize(d.Root)
	}
	for _, want := range []string{"Join", "Worthy", "Bird", "SectionPosition", "AuthorPosition", "href"} {
		if !strings.Contains(all, want) {
			t.Errorf("corpus missing %q", want)
		}
	}
}

func TestSigmodCorpusScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus in -short mode")
	}
	docs := GenerateSigmod(DefaultSigmodConfig())
	if len(docs) != 3000 {
		t.Fatalf("documents = %d", len(docs))
	}
	size := CorpusSize(docs)
	// Target ~12 MB, accept a generous band.
	if size < 8_000_000 || size > 18_000_000 {
		t.Errorf("corpus size = %d bytes, want ~12MB", size)
	}
}

func TestSigmodAttributesPresent(t *testing.T) {
	docs := GenerateSigmod(smallSigmodConfig())
	doc := docs[0]
	titles := doc.Root.Descendants("title")
	if len(titles) == 0 {
		t.Fatal("no titles")
	}
	if _, ok := titles[0].Attr("articleCode"); !ok {
		t.Error("title missing articleCode attribute")
	}
	authors := doc.Root.Descendants("author")
	if len(authors) == 0 {
		t.Fatal("no authors")
	}
	if v, ok := authors[0].Attr("AuthorPosition"); !ok || v != "1" {
		t.Errorf("first author position = %q, %v", v, ok)
	}
}

func TestSentenceKeywords(t *testing.T) {
	docs := GeneratePlays(smallPlayConfig())
	_ = docs
	// sentence() appends keywords verbatim.
	rng := newTestRand()
	s := sentence(rng, 4, "friend")
	if !strings.HasSuffix(s, " friend") {
		t.Errorf("sentence = %q", s)
	}
	if len(strings.Fields(s)) != 5 {
		t.Errorf("word count = %d", len(strings.Fields(s)))
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
