package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// PlayConfig sizes the Shakespeare-like generator. The defaults
// approximate Bosak's corpus: 37 plays totalling ~7.5 MB.
type PlayConfig struct {
	// Plays is the number of documents.
	Plays int
	// Seed drives the deterministic generator.
	Seed int64
	// ActsPerPlay, ScenesPerAct, SpeechesPerScene and LinesPerSpeech are
	// [min, max] ranges.
	ActsPerPlay      [2]int
	ScenesPerAct     [2]int
	SpeechesPerScene [2]int
	LinesPerSpeech   [2]int
}

// DefaultPlayConfig returns the paper-scale configuration.
func DefaultPlayConfig() PlayConfig {
	return PlayConfig{
		Plays:            37,
		Seed:             42,
		ActsPerPlay:      [2]int{4, 5},
		ScenesPerAct:     [2]int{5, 7},
		SpeechesPerScene: [2]int{24, 34},
		LinesPerSpeech:   [2]int{3, 7},
	}
}

// playTitles seeds the first documents with the titles the workload
// selects on; remaining plays get generated titles.
var playTitles = []string{
	"Romeo and Juliet", "Hamlet", "Macbeth", "Othello", "King Lear",
	"The Tempest", "Twelfth Night", "Julius Caesar", "As You Like It",
	"A Midsummer Night Dream",
}

// GeneratePlays produces the corpus as parsed documents.
func GeneratePlays(cfg PlayConfig) []*xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	docs := make([]*xmltree.Document, cfg.Plays)
	for i := range docs {
		docs[i] = &xmltree.Document{
			DoctypeName: "PLAY",
			Root:        generatePlay(rng, i),
		}
	}
	return docs
}

func generatePlay(rng *rand.Rand, idx int) *xmltree.Node {
	cfg := DefaultPlayConfig()
	title := fmt.Sprintf("The Chronicle of %s", pick(rng, names))
	if idx < len(playTitles) {
		title = playTitles[idx]
	}
	// A per-play cast; the first few plays make sure the queried
	// speakers appear in the right plays.
	cast := castFor(rng, title)

	play := xmltree.NewElement("PLAY")
	appendTextElem(play, "TITLE", title)

	fm := xmltree.NewElement("FM")
	for i := 0; i < between(rng, 2, 4); i++ {
		appendTextElem(fm, "P", sentence(rng, between(rng, 8, 16)))
	}
	play.Append(fm)

	personae := xmltree.NewElement("PERSONAE")
	appendTextElem(personae, "TITLE", "Dramatis Personae")
	for _, name := range cast {
		appendTextElem(personae, "PERSONA", name+", of the house")
	}
	group := xmltree.NewElement("PGROUP")
	appendTextElem(group, "PERSONA", "First Citizen")
	appendTextElem(group, "PERSONA", "Second Citizen")
	appendTextElem(group, "GRPDESCR", "citizens of the town")
	personae.Append(group)
	play.Append(personae)

	appendTextElem(play, "SCNDESCR", "SCENE "+sentence(rng, 6))
	appendTextElem(play, "PLAYSUBT", title)

	if rng.Intn(4) == 0 {
		play.Append(generateInduct(rng, cast))
	}
	if rng.Intn(2) == 0 {
		play.Append(generateProloguish(rng, cast, "PROLOGUE"))
	}
	for a := 0; a < between(rng, cfg.ActsPerPlay[0], cfg.ActsPerPlay[1]); a++ {
		play.Append(generateAct(rng, cast, a+1, cfg))
	}
	if rng.Intn(3) == 0 {
		play.Append(generateProloguish(rng, cast, "EPILOGUE"))
	}
	return play
}

// castFor picks the play's speakers, planting ROMEO/JULIET in "Romeo and
// Juliet" and HAMLET in "Hamlet".
func castFor(rng *rand.Rand, title string) []string {
	cast := map[string]bool{}
	switch title {
	case "Romeo and Juliet":
		cast["ROMEO"] = true
		cast["JULIET"] = true
	case "Hamlet":
		cast["HAMLET"] = true
		cast["HORATIO"] = true
	}
	for len(cast) < 12 {
		cast[pick(rng, names)] = true
	}
	out := make([]string, 0, len(cast))
	for name := range cast {
		out = append(out, name)
	}
	// Deterministic order despite map iteration.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func generateInduct(rng *rand.Rand, cast []string) *xmltree.Node {
	induct := xmltree.NewElement("INDUCT")
	appendTextElem(induct, "TITLE", "Induction")
	if rng.Intn(2) == 0 {
		appendTextElem(induct, "SUBTITLE", sentence(rng, 4))
	}
	for i := 0; i < between(rng, 2, 4); i++ {
		induct.Append(generateSpeech(rng, cast, false))
	}
	return induct
}

// generateProloguish builds a PROLOGUE or EPILOGUE: title, optional
// subtitles, then stage directions and speeches. Prologue speeches always
// have at least two lines so query QS6 ("the second line in all speeches
// that are in prologues") selects rows.
func generateProloguish(rng *rand.Rand, cast []string, tag string) *xmltree.Node {
	n := xmltree.NewElement(tag)
	appendTextElem(n, "TITLE", tag)
	if rng.Intn(3) == 0 {
		appendTextElem(n, "SUBTITLE", sentence(rng, 3))
	}
	appendTextElem(n, "STAGEDIR", "Enter Chorus")
	for i := 0; i < between(rng, 1, 3); i++ {
		n.Append(generateSpeech(rng, cast, true))
	}
	return n
}

func generateAct(rng *rand.Rand, cast []string, num int, cfg PlayConfig) *xmltree.Node {
	act := xmltree.NewElement("ACT")
	appendTextElem(act, "TITLE", fmt.Sprintf("ACT %d", num))
	if rng.Intn(4) == 0 {
		appendTextElem(act, "SUBTITLE", sentence(rng, 3))
	}
	if rng.Intn(5) == 0 {
		act.Append(generateProloguish(rng, cast, "PROLOGUE"))
	}
	for s := 0; s < between(rng, cfg.ScenesPerAct[0], cfg.ScenesPerAct[1]); s++ {
		act.Append(generateScene(rng, cast, num, s+1, cfg))
	}
	if rng.Intn(8) == 0 {
		act.Append(generateProloguish(rng, cast, "EPILOGUE"))
	}
	return act
}

func generateScene(rng *rand.Rand, cast []string, act, num int, cfg PlayConfig) *xmltree.Node {
	scene := xmltree.NewElement("SCENE")
	appendTextElem(scene, "TITLE", fmt.Sprintf("SCENE %d.%d", act, num))
	if rng.Intn(5) == 0 {
		appendTextElem(scene, "SUBTITLE", sentence(rng, 3))
	}
	appendTextElem(scene, "STAGEDIR", "Enter "+pick(rng, cast))
	for i := 0; i < between(rng, cfg.SpeechesPerScene[0], cfg.SpeechesPerScene[1]); i++ {
		scene.Append(generateSpeech(rng, cast, true))
		if rng.Intn(10) == 0 {
			appendTextElem(scene, "STAGEDIR", stageDirection(rng))
		}
		if rng.Intn(25) == 0 {
			appendTextElem(scene, "SUBHEAD", sentence(rng, 2))
		}
	}
	return scene
}

// generateSpeech builds a SPEECH with 1-2 speakers and several lines.
// Keywords are planted at fixed rates: "friend" in ~2% of lines, "love"
// in ~20% of ROMEO's and JULIET's lines, embedded stage directions in ~4%
// of lines, and "Rising" in ~15% of stage directions.
func generateSpeech(rng *rand.Rand, cast []string, minTwoLines bool) *xmltree.Node {
	speech := xmltree.NewElement("SPEECH")
	speaker := pick(rng, cast)
	appendTextElem(speech, "SPEAKER", speaker)
	if rng.Intn(20) == 0 {
		appendTextElem(speech, "SPEAKER", pick(rng, cast))
	}
	cfg := DefaultPlayConfig()
	nlines := between(rng, cfg.LinesPerSpeech[0], cfg.LinesPerSpeech[1])
	if minTwoLines && nlines < 2 {
		nlines = 2
	}
	for i := 0; i < nlines; i++ {
		line := xmltree.NewElement("LINE")
		var keywords []string
		if rng.Intn(50) == 0 {
			keywords = append(keywords, "friend")
		}
		if (speaker == "ROMEO" || speaker == "JULIET") && rng.Intn(5) == 0 {
			keywords = append(keywords, "love")
		}
		line.AppendText(sentence(rng, between(rng, 5, 9), keywords...))
		if rng.Intn(25) == 0 {
			// Mixed content: a stage direction embedded in the line.
			sd := xmltree.NewElement("STAGEDIR")
			sd.AppendText(stageDirection(rng))
			line.Append(sd)
			line.AppendText(" " + sentence(rng, 3))
		}
		speech.Append(line)
	}
	if rng.Intn(20) == 0 {
		appendTextElem(speech, "STAGEDIR", stageDirection(rng))
	}
	if rng.Intn(60) == 0 {
		appendTextElem(speech, "SUBHEAD", sentence(rng, 2))
	}
	return speech
}

func stageDirection(rng *rand.Rand) string {
	dirs := []string{"Exit", "Exeunt", "Aside", "Dies", "Rising", "Kneels",
		"Draws his sword", "Reads the letter", "Trumpets sound"}
	return dirs[rng.Intn(len(dirs))]
}

func appendTextElem(parent *xmltree.Node, tag, text string) {
	elem := xmltree.NewElement(tag)
	elem.AppendText(text)
	parent.Append(elem)
}

// CorpusSize returns the total serialized size in bytes of a document
// set.
func CorpusSize(docs []*xmltree.Document) int {
	total := 0
	for _, d := range docs {
		total += xmltree.SerializedSize(d.Root)
	}
	return total
}
