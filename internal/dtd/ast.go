// Package dtd parses Document Type Definitions and implements the DTD
// simplification rules of Shanmugasundaram et al. (VLDB 1999) that both the
// Hybrid and XORator mapping algorithms rely on.
//
// The parser accepts the internal-subset syntax: <!ELEMENT>, <!ATTLIST>,
// parameter entity declarations (<!ENTITY % name "text">) and references
// (%name;), comments, and processing instructions. Conditional sections and
// external entities are not supported; the corpora the paper evaluates do
// not use them.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Occurs is an occurrence indicator on a content particle.
type Occurs int

// Occurrence indicators in increasing "generosity" order.
const (
	// One means exactly one occurrence (no indicator).
	One Occurs = iota
	// Opt means zero or one ("?").
	Opt
	// Plus means one or more ("+").
	Plus
	// Star means zero or more ("*").
	Star
)

// String returns the DTD suffix for the indicator ("", "?", "+", "*").
func (o Occurs) String() string {
	switch o {
	case Opt:
		return "?"
	case Plus:
		return "+"
	case Star:
		return "*"
	default:
		return ""
	}
}

// ParticleKind distinguishes the forms a content particle can take.
type ParticleKind int

const (
	// PName is a reference to a child element by name.
	PName ParticleKind = iota
	// PSeq is a sequence group "(a, b, c)".
	PSeq
	// PChoice is a choice group "(a | b | c)".
	PChoice
	// PPCDATA is the #PCDATA token inside a mixed-content group.
	PPCDATA
)

// Particle is a node in a content-model expression tree.
type Particle struct {
	Kind ParticleKind
	// Name is the referenced element name for PName particles.
	Name string
	// Children are the group members for PSeq and PChoice particles.
	Children []*Particle
	// Occurs is the occurrence indicator attached to this particle.
	Occurs Occurs
}

// String renders the particle in DTD syntax.
func (p *Particle) String() string {
	var body string
	switch p.Kind {
	case PName:
		body = p.Name
	case PPCDATA:
		body = "#PCDATA"
	case PSeq, PChoice:
		sep := ","
		if p.Kind == PChoice {
			sep = "|"
		}
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + p.Occurs.String()
}

// ContentType classifies an element declaration's content specification.
type ContentType int

const (
	// ContentChildren is element content: a group of child particles.
	ContentChildren ContentType = iota
	// ContentMixed is mixed content: (#PCDATA | a | b)*.
	ContentMixed
	// ContentPCDATA is text-only content: (#PCDATA).
	ContentPCDATA
	// ContentEmpty is EMPTY.
	ContentEmpty
	// ContentAny is ANY.
	ContentAny
)

// String returns a keyword describing the content type.
func (t ContentType) String() string {
	switch t {
	case ContentChildren:
		return "children"
	case ContentMixed:
		return "mixed"
	case ContentPCDATA:
		return "#PCDATA"
	case ContentEmpty:
		return "EMPTY"
	case ContentAny:
		return "ANY"
	default:
		return fmt.Sprintf("ContentType(%d)", int(t))
	}
}

// AttrType is the declared type of an attribute.
type AttrType int

const (
	// AttrCDATA is a CDATA string attribute.
	AttrCDATA AttrType = iota
	// AttrID is an ID attribute.
	AttrID
	// AttrIDREF is an IDREF attribute.
	AttrIDREF
	// AttrIDREFS is an IDREFS attribute.
	AttrIDREFS
	// AttrNMTOKEN is an NMTOKEN attribute.
	AttrNMTOKEN
	// AttrNMTOKENS is an NMTOKENS attribute.
	AttrNMTOKENS
	// AttrEntity is an ENTITY attribute.
	AttrEntity
	// AttrEntities is an ENTITIES attribute.
	AttrEntities
	// AttrEnum is an enumerated attribute "(a|b|c)".
	AttrEnum
	// AttrNotation is a NOTATION attribute.
	AttrNotation
)

// AttrDefault is the default-declaration kind of an attribute.
type AttrDefault int

const (
	// DefaultImplied is #IMPLIED.
	DefaultImplied AttrDefault = iota
	// DefaultRequired is #REQUIRED.
	DefaultRequired
	// DefaultFixed is #FIXED "value".
	DefaultFixed
	// DefaultValue is a plain default "value".
	DefaultValue
)

// Attribute is one attribute definition from an ATTLIST declaration.
type Attribute struct {
	Name    string
	Type    AttrType
	Enum    []string // enumeration values for AttrEnum / AttrNotation
	Default AttrDefault
	Value   string // default or fixed value
}

// Element is a parsed element type declaration together with any attributes
// declared for it.
type Element struct {
	Name    string
	Content ContentType
	// Model is the content particle for ContentChildren; for ContentMixed
	// it is the choice group of the non-PCDATA members.
	Model *Particle
	Attrs []Attribute
}

// DTD is a parsed document type definition.
type DTD struct {
	// Elements maps element names to their declarations.
	Elements map[string]*Element
	// Order lists element names in declaration order.
	Order []string
	// Entities maps parameter entity names to replacement text.
	Entities map[string]string
}

// Element returns the declaration for name, or nil if undeclared.
func (d *DTD) Element(name string) *Element {
	return d.Elements[name]
}

// Names returns all declared element names in declaration order.
func (d *DTD) Names() []string {
	out := make([]string, len(d.Order))
	copy(out, d.Order)
	return out
}

// Roots returns the names of elements that are never referenced as a child
// in any other element's content model, sorted for determinism. A typical
// document DTD has exactly one root.
func (d *DTD) Roots() []string {
	referenced := map[string]bool{}
	for _, e := range d.Elements {
		if e.Model != nil {
			collectNames(e.Model, referenced)
		}
	}
	var roots []string
	for _, name := range d.Order {
		if !referenced[name] {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	return roots
}

func collectNames(p *Particle, into map[string]bool) {
	if p.Kind == PName {
		into[p.Name] = true
	}
	for _, c := range p.Children {
		collectNames(c, into)
	}
}

// String renders the whole DTD in declaration syntax, one declaration per
// line, in declaration order.
func (d *DTD) String() string {
	var sb strings.Builder
	for _, name := range d.Order {
		e := d.Elements[name]
		sb.WriteString("<!ELEMENT ")
		sb.WriteString(e.Name)
		sb.WriteByte(' ')
		switch e.Content {
		case ContentEmpty:
			sb.WriteString("EMPTY")
		case ContentAny:
			sb.WriteString("ANY")
		case ContentPCDATA:
			sb.WriteString("(#PCDATA)")
		case ContentMixed:
			sb.WriteString("(#PCDATA")
			if e.Model != nil {
				for _, c := range e.Model.Children {
					sb.WriteString("|")
					sb.WriteString(c.String())
				}
			}
			sb.WriteString(")*")
		case ContentChildren:
			// A bare name model must be parenthesized to be valid DTD
			// syntax: "(P+)" rather than "P+".
			if e.Model.Kind == PName {
				sb.WriteString("(" + e.Model.String() + ")")
			} else {
				sb.WriteString(e.Model.String())
			}
		}
		sb.WriteString(">\n")
		for _, a := range e.Attrs {
			sb.WriteString("<!ATTLIST ")
			sb.WriteString(e.Name)
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteByte(' ')
			sb.WriteString(attrTypeString(a))
			sb.WriteByte(' ')
			switch a.Default {
			case DefaultImplied:
				sb.WriteString("#IMPLIED")
			case DefaultRequired:
				sb.WriteString("#REQUIRED")
			case DefaultFixed:
				sb.WriteString("#FIXED ")
				fmt.Fprintf(&sb, "%q", a.Value)
			case DefaultValue:
				fmt.Fprintf(&sb, "%q", a.Value)
			}
			sb.WriteString(">\n")
		}
	}
	return sb.String()
}

func attrTypeString(a Attribute) string {
	switch a.Type {
	case AttrCDATA:
		return "CDATA"
	case AttrID:
		return "ID"
	case AttrIDREF:
		return "IDREF"
	case AttrIDREFS:
		return "IDREFS"
	case AttrNMTOKEN:
		return "NMTOKEN"
	case AttrNMTOKENS:
		return "NMTOKENS"
	case AttrEntity:
		return "ENTITY"
	case AttrEntities:
		return "ENTITIES"
	case AttrNotation:
		return "NOTATION (" + strings.Join(a.Enum, "|") + ")"
	case AttrEnum:
		return "(" + strings.Join(a.Enum, "|") + ")"
	default:
		return "CDATA"
	}
}
