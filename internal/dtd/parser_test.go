package dtd

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func mustParse(t *testing.T, src string) *DTD {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return d
}

func TestParsePlaysDTD(t *testing.T) {
	d := mustParse(t, corpus.PlaysDTD)
	if got := len(d.Elements); got != 11 {
		t.Errorf("got %d elements, want 11", got)
	}
	play := d.Element("PLAY")
	if play == nil {
		t.Fatal("PLAY not declared")
	}
	if play.Content != ContentChildren {
		t.Errorf("PLAY content = %v, want children", play.Content)
	}
	if got := play.Model.String(); got != "(INDUCT?,ACT+)" {
		t.Errorf("PLAY model = %q", got)
	}
	line := d.Element("LINE")
	if line.Content != ContentPCDATA {
		t.Errorf("LINE content = %v, want #PCDATA", line.Content)
	}
	roots := d.Roots()
	if len(roots) != 1 || roots[0] != "PLAY" {
		t.Errorf("roots = %v, want [PLAY]", roots)
	}
}

func TestParseShakespeareDTD(t *testing.T) {
	d := mustParse(t, corpus.ShakespeareDTD)
	if got := len(d.Elements); got != 21 {
		t.Errorf("got %d elements, want 21", got)
	}
	line := d.Element("LINE")
	if line.Content != ContentMixed {
		t.Errorf("LINE content = %v, want mixed", line.Content)
	}
	if len(line.Model.Children) != 1 || line.Model.Children[0].Name != "STAGEDIR" {
		t.Errorf("LINE mixed members = %v", line.Model)
	}
	speech := d.Element("SPEECH")
	if got := speech.Model.String(); got != "(SPEAKER+,(LINE|STAGEDIR|SUBHEAD)+)" {
		t.Errorf("SPEECH model = %q", got)
	}
	roots := d.Roots()
	if len(roots) != 1 || roots[0] != "PLAY" {
		t.Errorf("roots = %v, want [PLAY]", roots)
	}
}

func TestParseSigmodDTD(t *testing.T) {
	d := mustParse(t, corpus.SigmodDTD)
	if got := len(d.Elements); got != 23 {
		t.Errorf("got %d elements, want 23", got)
	}
	// Parameter entity expansion inside ATTLIST.
	idx := d.Element("index")
	if len(idx.Attrs) != 1 || idx.Attrs[0].Name != "href" {
		t.Fatalf("index attrs = %+v, want href from %%Xlink;", idx.Attrs)
	}
	if idx.Attrs[0].Type != AttrCDATA || idx.Attrs[0].Default != DefaultImplied {
		t.Errorf("href attr = %+v", idx.Attrs[0])
	}
	sn := d.Element("sectionName")
	if len(sn.Attrs) != 1 || sn.Attrs[0].Name != "SectionPosition" {
		t.Errorf("sectionName attrs = %+v", sn.Attrs)
	}
	roots := d.Roots()
	if len(roots) != 1 || roots[0] != "PP" {
		t.Errorf("roots = %v, want [PP]", roots)
	}
}

func TestParseContentModels(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`<!ELEMENT a (b)>`, "b"},
		{`<!ELEMENT a (b)?>`, "b?"},
		{`<!ELEMENT a (b+)*>`, "b*"},
		{`<!ELEMENT a (b, c?, d*)>`, "(b,c?,d*)"},
		{`<!ELEMENT a (b | c | d)+>`, "(b|c|d)+"},
		{`<!ELEMENT a ((b, c) | d)>`, "((b,c)|d)"},
		{`<!ELEMENT a (b, (c | d)*, e)>`, "(b,(c|d)*,e)"},
	}
	for _, tc := range cases {
		d := mustParse(t, tc.src)
		if got := d.Element("a").Model.String(); got != tc.want {
			t.Errorf("%s: model = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseEmptyAndAny(t *testing.T) {
	d := mustParse(t, `<!ELEMENT a EMPTY><!ELEMENT b ANY>`)
	if d.Element("a").Content != ContentEmpty {
		t.Error("a should be EMPTY")
	}
	if d.Element("b").Content != ContentAny {
		t.Error("b should be ANY")
	}
}

func TestParseAttlistTypes(t *testing.T) {
	d := mustParse(t, `
<!ELEMENT e (#PCDATA)>
<!ATTLIST e
  a CDATA #REQUIRED
  b ID #IMPLIED
  c (x|y|z) "x"
  d NMTOKEN #FIXED "v"
  f IDREF #IMPLIED>
`)
	attrs := d.Element("e").Attrs
	if len(attrs) != 5 {
		t.Fatalf("got %d attrs, want 5", len(attrs))
	}
	if attrs[0].Type != AttrCDATA || attrs[0].Default != DefaultRequired {
		t.Errorf("attr a = %+v", attrs[0])
	}
	if attrs[1].Type != AttrID {
		t.Errorf("attr b = %+v", attrs[1])
	}
	if attrs[2].Type != AttrEnum || len(attrs[2].Enum) != 3 || attrs[2].Value != "x" {
		t.Errorf("attr c = %+v", attrs[2])
	}
	if attrs[3].Type != AttrNMTOKEN || attrs[3].Default != DefaultFixed || attrs[3].Value != "v" {
		t.Errorf("attr d = %+v", attrs[3])
	}
	if attrs[4].Type != AttrIDREF {
		t.Errorf("attr f = %+v", attrs[4])
	}
}

func TestAttlistBeforeElement(t *testing.T) {
	d := mustParse(t, `<!ATTLIST e k CDATA #IMPLIED><!ELEMENT e (#PCDATA)>`)
	e := d.Element("e")
	if e.Content != ContentPCDATA {
		t.Errorf("content = %v, want #PCDATA", e.Content)
	}
	if len(e.Attrs) != 1 || e.Attrs[0].Name != "k" {
		t.Errorf("attrs = %+v", e.Attrs)
	}
	if len(d.Order) != 1 {
		t.Errorf("order = %v, want one entry", d.Order)
	}
}

func TestParameterEntityInContentModel(t *testing.T) {
	d := mustParse(t, `
<!ENTITY % inline "(b | i | em)">
<!ELEMENT p %inline;>
`)
	if got := d.Element("p").Model.String(); got != "(b|i|em)" {
		t.Errorf("model = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<!ELEMENT a (b,>`,                  // bad group
		`<!ELEMENT a (b | c, d)>`,           // mixed separators
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`, // duplicate
		`<!ELEMENT a (b, (#PCDATA | c))>`,   // nested PCDATA group
		`<!ATTLIST e k BOGUS #IMPLIED>`,     // bad attr type
		`<!ELEMENT a %undef;>`,              // undefined PE
		`stray text`,                        // garbage
		`<!ELEMENT a (b)`,                   // missing '>'
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsAndPIsSkipped(t *testing.T) {
	d := mustParse(t, `
<!-- a comment -->
<!ELEMENT a (#PCDATA)>
<?keep out?>
<!NOTATION gif SYSTEM "image/gif">
<!ENTITY copy "&#169;">
<!ELEMENT b (a)>
`)
	if len(d.Elements) != 2 {
		t.Errorf("got %d elements, want 2", len(d.Elements))
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	d := mustParse(t, corpus.ShakespeareDTD)
	d2 := mustParse(t, d.String())
	if d.String() != d2.String() {
		t.Error("String() not stable under reparse")
	}
	if len(d2.Elements) != len(d.Elements) {
		t.Errorf("reparse lost elements: %d vs %d", len(d2.Elements), len(d.Elements))
	}
}

func TestSingleMemberGroupCollapse(t *testing.T) {
	d := mustParse(t, `<!ELEMENT a ((b))*>`)
	m := d.Element("a").Model
	if m.Kind != PName || m.Name != "b" || m.Occurs != Star {
		t.Errorf("model = %v (%q)", m.Kind, m.String())
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse(`<!ELEMENT a (b,>`)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "dtd:") {
		t.Errorf("error %q missing dtd: prefix", err)
	}
}
