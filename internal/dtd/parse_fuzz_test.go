package dtd_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/dtd"
)

// FuzzDTDParse asserts the DTD parser never panics, and that anything it
// accepts survives a render/re-parse round trip: Parse(d.String()) must
// succeed and the simplifier must handle both results.
func FuzzDTDParse(f *testing.F) {
	f.Add(corpus.PlaysDTD)
	f.Add(corpus.ShakespeareDTD)
	f.Add(corpus.SigmodDTD)
	f.Add("<!ELEMENT a (#PCDATA)>")
	f.Add("<!ELEMENT a (b, c?, (d | e)*)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c ANY>")
	f.Add("<!ELEMENT a (#PCDATA | b)*>\n<!ATTLIST a k CDATA #REQUIRED j (x|y) \"x\">")
	f.Add("<!ENTITY % kids \"(b, c)\">\n<!ELEMENT a %kids;>")
	f.Add("<!-- comment --><!ELEMENT a (a?)>")
	f.Add("<!ELEMENT \xff (#PCDATA)>")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := dtd.Parse(src)
		if err != nil {
			return
		}
		dtd.Simplify(d)
		rendered := d.String()
		d2, err := dtd.Parse(rendered)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal:\n%s\nrendered:\n%s", err, src, rendered)
		}
		dtd.Simplify(d2)
	})
}
