package dtd

import "strings"

// Item is one child-element slot in a simplified content model: an element
// name with an occurrence indicator that, after simplification, is always
// One, Opt, or Star.
type Item struct {
	Name   string
	Occurs Occurs
}

// SimplifiedElement is the result of applying the simplification rules of
// Shanmugasundaram et al. (VLDB 1999, §3.1 of the XORator paper) to one
// element declaration: a flat, duplicate-free sequence of child items plus
// a flag recording whether the element holds character data.
type SimplifiedElement struct {
	Name string
	// HasPCDATA reports whether the element's content includes #PCDATA
	// (PCDATA-only or mixed content).
	HasPCDATA bool
	// Items are the child element slots in order of first appearance.
	Items []Item
	// Attrs are the attributes declared for the element.
	Attrs []Attribute
}

// Item returns the item for the named child and whether it exists.
func (e *SimplifiedElement) Item(name string) (Item, bool) {
	for _, it := range e.Items {
		if it.Name == name {
			return it, true
		}
	}
	return Item{}, false
}

// String renders the simplified element as a DTD-style declaration.
func (e *SimplifiedElement) String() string {
	var parts []string
	if e.HasPCDATA && len(e.Items) == 0 {
		return "<!ELEMENT " + e.Name + " (#PCDATA)>"
	}
	for _, it := range e.Items {
		parts = append(parts, it.Name+it.Occurs.String())
	}
	if e.HasPCDATA {
		parts = append(parts, "#PCDATA")
	}
	return "<!ELEMENT " + e.Name + " (" + strings.Join(parts, ", ") + ")>"
}

// SimplifiedDTD is a DTD after simplification.
type SimplifiedDTD struct {
	// Elements maps element names to their simplified declarations.
	Elements map[string]*SimplifiedElement
	// Order preserves the source declaration order.
	Order []string
}

// Element returns the simplified declaration for name, or nil.
func (d *SimplifiedDTD) Element(name string) *SimplifiedElement {
	return d.Elements[name]
}

// Roots returns element names never referenced as a child, in declaration
// order.
func (d *SimplifiedDTD) Roots() []string {
	referenced := map[string]bool{}
	for _, e := range d.Elements {
		for _, it := range e.Items {
			referenced[it.Name] = true
		}
	}
	var roots []string
	for _, name := range d.Order {
		if !referenced[name] {
			roots = append(roots, name)
		}
	}
	return roots
}

// String renders all simplified declarations, one per line.
func (d *SimplifiedDTD) String() string {
	var sb strings.Builder
	for _, name := range d.Order {
		sb.WriteString(d.Elements[name].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Simplify applies the DTD simplification transformations:
//
//   - flattening:      (e1, e2)* → e1*, e2*
//   - simplification:  e1** → e1*, and e+ → e*
//   - choice removal:  (e1 | e2) → e1?, e2?
//   - grouping:        ..., e1, ..., e1, ... → ..., e1*, ...
//
// The result for every element is a flat sequence of child items whose
// indicators are One, Opt, or Star.
func Simplify(d *DTD) *SimplifiedDTD {
	out := &SimplifiedDTD{Elements: map[string]*SimplifiedElement{}}
	for _, name := range d.Order {
		e := d.Elements[name]
		se := &SimplifiedElement{Name: name, Attrs: e.Attrs}
		switch e.Content {
		case ContentPCDATA:
			se.HasPCDATA = true
		case ContentMixed:
			se.HasPCDATA = true
			if e.Model != nil {
				flatten(e.Model, Star, se)
			}
		case ContentChildren:
			flatten(e.Model, One, se)
		case ContentEmpty, ContentAny:
			// No child structure to record.
		}
		group(se)
		out.Elements[name] = se
		out.Order = append(out.Order, name)
	}
	return out
}

// flatten walks a particle under the occurrence context ctx and appends the
// resulting flat items to se.
func flatten(p *Particle, ctx Occurs, se *SimplifiedElement) {
	eff := composeOccurs(p.Occurs, ctx)
	switch p.Kind {
	case PName:
		se.Items = append(se.Items, Item{Name: p.Name, Occurs: normalize(eff)})
	case PPCDATA:
		se.HasPCDATA = true
	case PSeq:
		for _, c := range p.Children {
			flatten(c, eff, se)
		}
	case PChoice:
		// (a | b) → a?, b?: each branch is individually optional.
		for _, c := range p.Children {
			flatten(c, composeOccurs(eff, Opt), se)
		}
	}
}

// normalize rewrites Plus to Star per the e+ → e* rule.
func normalize(o Occurs) Occurs {
	if o == Plus {
		return Star
	}
	return o
}

// group merges repeated child names into a single Star item at the first
// occurrence position.
func group(se *SimplifiedElement) {
	counts := map[string]int{}
	for _, it := range se.Items {
		counts[it.Name]++
	}
	var out []Item
	seen := map[string]bool{}
	for _, it := range se.Items {
		if seen[it.Name] {
			continue
		}
		seen[it.Name] = true
		if counts[it.Name] > 1 {
			it.Occurs = Star
		}
		out = append(out, it)
	}
	se.Items = out
}
