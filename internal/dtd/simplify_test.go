package dtd

import (
	"testing"

	"repro/internal/corpus"
)

// TestSimplifyPlaysDTD checks the paper's Figure 1 → Figure 2
// transformation element by element.
func TestSimplifyPlaysDTD(t *testing.T) {
	d := mustParse(t, corpus.PlaysDTD)
	s := Simplify(d)
	want := map[string]string{
		"PLAY":   "<!ELEMENT PLAY (INDUCT?, ACT*)>",
		"INDUCT": "<!ELEMENT INDUCT (TITLE, SUBTITLE*, SCENE*)>",
		"ACT":    "<!ELEMENT ACT (SCENE*, TITLE, SUBTITLE*, SPEECH*, PROLOGUE?)>",
		"SCENE":  "<!ELEMENT SCENE (TITLE, SUBTITLE*, SPEECH*, SUBHEAD*)>",
		"SPEECH": "<!ELEMENT SPEECH (SPEAKER*, LINE*)>",
		"TITLE":  "<!ELEMENT TITLE (#PCDATA)>",
	}
	for name, wantDecl := range want {
		if got := s.Element(name).String(); got != wantDecl {
			t.Errorf("%s:\n got %s\nwant %s", name, got, wantDecl)
		}
	}
}

func TestSimplifyIndicatorsAreNeverPlus(t *testing.T) {
	for _, src := range []string{corpus.PlaysDTD, corpus.ShakespeareDTD, corpus.SigmodDTD} {
		s := Simplify(mustParse(t, src))
		for name, e := range s.Elements {
			for _, it := range e.Items {
				if it.Occurs == Plus {
					t.Errorf("%s/%s still has '+' after simplification", name, it.Name)
				}
			}
		}
	}
}

func TestSimplifyChoiceBecomesOptional(t *testing.T) {
	s := Simplify(mustParse(t, `<!ELEMENT a (b | c)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>`))
	a := s.Element("a")
	for _, name := range []string{"b", "c"} {
		it, ok := a.Item(name)
		if !ok || it.Occurs != Opt {
			t.Errorf("item %s = %+v, want Opt", name, it)
		}
	}
}

func TestSimplifyChoiceUnderPlusBecomesStar(t *testing.T) {
	// SCENE's (SPEECH | SUBHEAD)+ must become SPEECH*, SUBHEAD*.
	s := Simplify(mustParse(t, `<!ELEMENT a (b | c)+> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>`))
	a := s.Element("a")
	for _, name := range []string{"b", "c"} {
		it, _ := a.Item(name)
		if it.Occurs != Star {
			t.Errorf("item %s occurs = %v, want Star", name, it.Occurs)
		}
	}
}

func TestSimplifyGroupingMergesDuplicates(t *testing.T) {
	s := Simplify(mustParse(t, `<!ELEMENT a (e0, e1, e1, e2)>
<!ELEMENT e0 (#PCDATA)> <!ELEMENT e1 (#PCDATA)> <!ELEMENT e2 (#PCDATA)>`))
	a := s.Element("a")
	if len(a.Items) != 3 {
		t.Fatalf("got %d items, want 3: %+v", len(a.Items), a.Items)
	}
	if a.Items[0].Name != "e0" || a.Items[1].Name != "e1" || a.Items[2].Name != "e2" {
		t.Errorf("order = %+v", a.Items)
	}
	if a.Items[1].Occurs != Star {
		t.Errorf("e1 occurs = %v, want Star", a.Items[1].Occurs)
	}
	if a.Items[0].Occurs != One || a.Items[2].Occurs != One {
		t.Errorf("e0/e2 occurs changed: %+v", a.Items)
	}
}

func TestSimplifySequenceUnderStarFlattens(t *testing.T) {
	// (SPEAKER, LINE)+ → SPEAKER*, LINE*.
	s := Simplify(mustParse(t, `<!ELEMENT speech (speaker, line)+>
<!ELEMENT speaker (#PCDATA)> <!ELEMENT line (#PCDATA)>`))
	sp := s.Element("speech")
	for _, name := range []string{"speaker", "line"} {
		it, _ := sp.Item(name)
		if it.Occurs != Star {
			t.Errorf("%s occurs = %v, want Star", name, it.Occurs)
		}
	}
}

func TestSimplifyNestedIndicators(t *testing.T) {
	s := Simplify(mustParse(t, `<!ELEMENT a ((b?)*, (c*)?)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>`))
	a := s.Element("a")
	for _, name := range []string{"b", "c"} {
		it, _ := a.Item(name)
		if it.Occurs != Star {
			t.Errorf("%s occurs = %v, want Star", name, it.Occurs)
		}
	}
}

func TestSimplifyMixedContent(t *testing.T) {
	s := Simplify(mustParse(t, `<!ELEMENT line (#PCDATA | stagedir)*> <!ELEMENT stagedir (#PCDATA)>`))
	line := s.Element("line")
	if !line.HasPCDATA {
		t.Error("line should have PCDATA")
	}
	it, ok := line.Item("stagedir")
	if !ok || it.Occurs != Star {
		t.Errorf("stagedir item = %+v, want Star", it)
	}
}

func TestSimplifyShakespeareShapes(t *testing.T) {
	s := Simplify(mustParse(t, corpus.ShakespeareDTD))
	speech := s.Element("SPEECH")
	for _, name := range []string{"SPEAKER", "LINE", "STAGEDIR", "SUBHEAD"} {
		it, ok := speech.Item(name)
		if !ok || it.Occurs != Star {
			t.Errorf("SPEECH item %s = %+v, want Star", name, it)
		}
	}
	act := s.Element("ACT")
	if it, _ := act.Item("PROLOGUE"); it.Occurs != Opt {
		t.Errorf("ACT/PROLOGUE = %v, want Opt", it.Occurs)
	}
	if it, _ := act.Item("SCENE"); it.Occurs != Star {
		t.Errorf("ACT/SCENE = %v, want Star", it.Occurs)
	}
	if it, _ := act.Item("TITLE"); it.Occurs != One {
		t.Errorf("ACT/TITLE = %v, want One", it.Occurs)
	}
	if roots := s.Roots(); len(roots) != 1 || roots[0] != "PLAY" {
		t.Errorf("roots = %v", roots)
	}
}

func TestSimplifySigmodShapes(t *testing.T) {
	s := Simplify(mustParse(t, corpus.SigmodDTD))
	pp := s.Element("PP")
	if it, _ := pp.Item("sList"); it.Occurs != One {
		t.Errorf("PP/sList = %v, want One", it.Occurs)
	}
	sl := s.Element("sList")
	if it, _ := sl.Item("sListTuple"); it.Occurs != Star {
		t.Errorf("sList/sListTuple = %v, want Star", it.Occurs)
	}
	toindex := s.Element("Toindex")
	if it, _ := toindex.Item("index"); it.Occurs != Opt {
		t.Errorf("Toindex/index = %v, want Opt", it.Occurs)
	}
	authors := s.Element("authors")
	if it, _ := authors.Item("author"); it.Occurs != Star {
		t.Errorf("authors/author = %v, want Star", it.Occurs)
	}
}
