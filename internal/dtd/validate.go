package dtd

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// ValidationError reports a document's violation of a DTD.
type ValidationError struct {
	// Element is the offending element's tag name.
	Element string
	// Path is the slash-joined path from the root.
	Path string
	// Msg describes the violation.
	Msg string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("dtd: %s: %s", e.Path, e.Msg)
}

// Validate checks a document against the DTD: the root element must be
// declared, every element's attributes must be declared (with required
// attributes present and enumerations respected), and every element's
// children must match its content model. Character data is permitted
// only under mixed or PCDATA content.
func (d *DTD) Validate(doc *xmltree.Document) error {
	if doc.Root == nil {
		return &ValidationError{Msg: "document has no root element"}
	}
	return d.validateElement(doc.Root, "/"+doc.Root.Name)
}

func (d *DTD) validateElement(n *xmltree.Node, path string) error {
	decl := d.Elements[n.Name]
	if decl == nil {
		return &ValidationError{Element: n.Name, Path: path,
			Msg: fmt.Sprintf("element <%s> is not declared", n.Name)}
	}
	if err := d.validateAttrs(n, decl, path); err != nil {
		return err
	}
	if err := d.validateContent(n, decl, path); err != nil {
		return err
	}
	for _, c := range n.ChildElements() {
		if err := d.validateElement(c, path+"/"+c.Name); err != nil {
			return err
		}
	}
	return nil
}

func (d *DTD) validateAttrs(n *xmltree.Node, decl *Element, path string) error {
	declared := map[string]*Attribute{}
	for i := range decl.Attrs {
		declared[decl.Attrs[i].Name] = &decl.Attrs[i]
	}
	for _, a := range n.Attrs {
		spec, ok := declared[a.Name]
		if !ok {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: fmt.Sprintf("attribute %q is not declared", a.Name)}
		}
		if spec.Type == AttrEnum || spec.Type == AttrNotation {
			found := false
			for _, v := range spec.Enum {
				if v == a.Value {
					found = true
					break
				}
			}
			if !found {
				return &ValidationError{Element: n.Name, Path: path,
					Msg: fmt.Sprintf("attribute %q value %q not in enumeration %v",
						a.Name, a.Value, spec.Enum)}
			}
		}
		if spec.Default == DefaultFixed && a.Value != spec.Value {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: fmt.Sprintf("attribute %q must have fixed value %q", a.Name, spec.Value)}
		}
	}
	for name, spec := range declared {
		if spec.Default == DefaultRequired {
			if _, ok := n.Attr(name); !ok {
				return &ValidationError{Element: n.Name, Path: path,
					Msg: fmt.Sprintf("required attribute %q is missing", name)}
			}
		}
	}
	return nil
}

func (d *DTD) validateContent(n *xmltree.Node, decl *Element, path string) error {
	hasText := false
	for _, c := range n.Children {
		if c.IsText() && strings.TrimSpace(c.Text) != "" {
			hasText = true
		}
	}
	switch decl.Content {
	case ContentAny:
		return nil
	case ContentEmpty:
		if hasText || len(n.ChildElements()) > 0 {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: "EMPTY element has content"}
		}
		return nil
	case ContentPCDATA:
		if len(n.ChildElements()) > 0 {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: "PCDATA-only element has child elements"}
		}
		return nil
	case ContentMixed:
		allowed := map[string]bool{}
		if decl.Model != nil {
			for _, p := range decl.Model.Children {
				allowed[p.Name] = true
			}
		}
		for _, c := range n.ChildElements() {
			if !allowed[c.Name] {
				return &ValidationError{Element: n.Name, Path: path,
					Msg: fmt.Sprintf("mixed content does not permit <%s>", c.Name)}
			}
		}
		return nil
	default: // ContentChildren
		if hasText {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: "element content does not permit character data"}
		}
		names := make([]string, 0, len(n.Children))
		for _, c := range n.ChildElements() {
			names = append(names, c.Name)
		}
		if !matchModel(decl.Model, names) {
			return &ValidationError{Element: n.Name, Path: path,
				Msg: fmt.Sprintf("children (%s) do not match content model %s",
					strings.Join(names, ", "), decl.Model)}
		}
		return nil
	}
}

// matchModel reports whether the child-name sequence matches the content
// particle. Matching uses memoized recursive descent over (particle,
// position) states, which is exponential only for pathological models; the
// DTDs the paper works with are small.
func matchModel(p *Particle, names []string) bool {
	m := &matcher{names: names, memo: map[memoKey]map[int]bool{}}
	for _, end := range m.match(p, 0) {
		if end == len(names) {
			return true
		}
	}
	return false
}

type memoKey struct {
	p   *Particle
	pos int
}

type matcher struct {
	names []string
	memo  map[memoKey]map[int]bool
}

// match returns the set of positions reachable after matching particle p
// starting at pos.
func (m *matcher) match(p *Particle, pos int) []int {
	key := memoKey{p: p, pos: pos}
	if cached, ok := m.memo[key]; ok {
		return keys(cached)
	}
	// Seed the memo to cut left-recursive cycles (not expressible in DTD
	// content models, but cheap insurance).
	m.memo[key] = map[int]bool{}
	result := map[int]bool{}
	ends := m.matchOnce(p, pos)
	switch p.Occurs {
	case One:
		for _, e := range ends {
			result[e] = true
		}
	case Opt:
		result[pos] = true
		for _, e := range ends {
			result[e] = true
		}
	case Plus, Star:
		if p.Occurs == Star {
			result[pos] = true
		}
		frontier := ends
		for _, e := range frontier {
			result[e] = true
		}
		for len(frontier) > 0 {
			var next []int
			for _, e := range frontier {
				for _, e2 := range m.matchOnce(p, e) {
					if e2 > e && !result[e2] {
						result[e2] = true
						next = append(next, e2)
					}
				}
			}
			frontier = next
		}
	}
	m.memo[key] = result
	return keys(result)
}

// matchOnce matches a single occurrence of p's body (ignoring p.Occurs).
func (m *matcher) matchOnce(p *Particle, pos int) []int {
	switch p.Kind {
	case PName:
		if pos < len(m.names) && m.names[pos] == p.Name {
			return []int{pos + 1}
		}
		return nil
	case PPCDATA:
		return []int{pos}
	case PChoice:
		var out []int
		seen := map[int]bool{}
		for _, c := range p.Children {
			for _, e := range m.match(c, pos) {
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
		return out
	case PSeq:
		frontier := []int{pos}
		for _, c := range p.Children {
			var next []int
			seen := map[int]bool{}
			for _, f := range frontier {
				for _, e := range m.match(c, f) {
					if !seen[e] {
						seen[e] = true
						next = append(next, e)
					}
				}
			}
			frontier = next
			if len(frontier) == 0 {
				return nil
			}
		}
		return frontier
	default:
		return nil
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
