package dtd

import (
	"fmt"
	"strings"
)

// SyntaxError reports a DTD parse failure.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("dtd: offset %d: %s", e.Offset, e.Msg)
}

// Parse parses DTD declaration text (the internal subset of a DOCTYPE, or
// the contents of a standalone .dtd file).
func Parse(src string) (*DTD, error) {
	p := &dtdParser{
		src:          src,
		dtd:          &DTD{Elements: map[string]*Element{}, Entities: map[string]string{}},
		placeholders: map[string]bool{},
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.dtd, nil
}

type dtdParser struct {
	src string
	pos int
	dtd *DTD
	// placeholders records elements created by an ATTLIST that precedes
	// their ELEMENT declaration.
	placeholders map[string]bool
}

func (p *dtdParser) errorf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *dtdParser) eof() bool { return p.pos >= len(p.src) }

func (p *dtdParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *dtdParser) skipSpace() {
	for !p.eof() && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *dtdParser) run() error {
	for {
		p.skipSpace()
		if p.eof() {
			return nil
		}
		rest := p.src[p.pos:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				return p.errorf("unterminated comment")
			}
			p.pos += 4 + end + 3
		case strings.HasPrefix(rest, "<?"):
			end := strings.Index(rest, "?>")
			if end < 0 {
				return p.errorf("unterminated processing instruction")
			}
			p.pos += end + 2
		case strings.HasPrefix(rest, "<!ELEMENT"):
			p.pos += len("<!ELEMENT")
			if err := p.parseElementDecl(); err != nil {
				return err
			}
		case strings.HasPrefix(rest, "<!ATTLIST"):
			p.pos += len("<!ATTLIST")
			if err := p.parseAttlistDecl(); err != nil {
				return err
			}
		case strings.HasPrefix(rest, "<!ENTITY"):
			p.pos += len("<!ENTITY")
			if err := p.parseEntityDecl(); err != nil {
				return err
			}
		case strings.HasPrefix(rest, "<!NOTATION"):
			end := strings.Index(rest, ">")
			if end < 0 {
				return p.errorf("unterminated NOTATION declaration")
			}
			p.pos += end + 1
		case rest[0] == '%':
			// Parameter entity reference at declaration level: splice in
			// the replacement text.
			if err := p.spliceEntity(); err != nil {
				return err
			}
		default:
			return p.errorf("unexpected content %q", truncate(rest, 20))
		}
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// spliceEntity expands a %name; reference occurring between declarations by
// rewriting the unread input.
func (p *dtdParser) spliceEntity() error {
	start := p.pos
	p.pos++ // '%'
	name, err := p.parseName()
	if err != nil {
		return err
	}
	if p.peek() != ';' {
		return p.errorf("expected ';' after parameter entity %%%s", name)
	}
	p.pos++
	text, ok := p.dtd.Entities[name]
	if !ok {
		return p.errorf("undefined parameter entity %%%s;", name)
	}
	p.src = p.src[:start] + text + p.src[p.pos:]
	p.pos = start
	return nil
}

func (p *dtdParser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errorf("expected name")
	}
	p.pos++
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *dtdParser) expect(c byte) error {
	if p.peek() != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// expandPEs replaces parameter entity references inside a declaration body.
func (p *dtdParser) expandPEs(s string) (string, error) {
	for strings.Contains(s, "%") {
		i := strings.IndexByte(s, '%')
		j := strings.IndexByte(s[i:], ';')
		if j < 0 {
			return "", p.errorf("unterminated parameter entity reference")
		}
		name := s[i+1 : i+j]
		text, ok := p.dtd.Entities[name]
		if !ok {
			return "", p.errorf("undefined parameter entity %%%s;", name)
		}
		s = s[:i] + text + s[i+j+1:]
	}
	return s, nil
}

func (p *dtdParser) parseElementDecl() error {
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return err
	}
	p.skipSpace()
	elem := &Element{Name: name}
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "EMPTY"):
		elem.Content = ContentEmpty
		p.pos += len("EMPTY")
	case strings.HasPrefix(rest, "ANY"):
		elem.Content = ContentAny
		p.pos += len("ANY")
	default:
		particle, hasPCDATA, err := p.parseGroup()
		if err != nil {
			return err
		}
		switch {
		case hasPCDATA && len(particle.Children) == 0:
			elem.Content = ContentPCDATA
		case hasPCDATA:
			elem.Content = ContentMixed
			particle.Kind = PChoice
			particle.Occurs = Star
			elem.Model = particle
		default:
			elem.Content = ContentChildren
			elem.Model = particle
		}
	}
	p.skipSpace()
	if err := p.expect('>'); err != nil {
		return err
	}
	if prev, dup := p.dtd.Elements[name]; dup {
		if !p.placeholders[name] {
			return p.errorf("duplicate declaration of element %s (previous content %v)", name, prev.Content)
		}
		// Fill in the placeholder an earlier ATTLIST created, keeping
		// its attributes.
		delete(p.placeholders, name)
		prev.Content = elem.Content
		prev.Model = elem.Model
		return nil
	}
	p.dtd.Elements[name] = elem
	p.dtd.Order = append(p.dtd.Order, name)
	return nil
}

// parseGroup parses a parenthesized content group. It returns the group
// particle (with #PCDATA members removed) and whether #PCDATA appeared.
func (p *dtdParser) parseGroup() (*Particle, bool, error) {
	if p.peek() == '%' {
		if err := p.spliceEntity(); err != nil {
			return nil, false, err
		}
		p.skipSpace()
	}
	if err := p.expect('('); err != nil {
		return nil, false, err
	}
	group := &Particle{Kind: PSeq}
	hasPCDATA := false
	sep := byte(0) // ',' or '|' once determined
	for {
		p.skipSpace()
		child, childPCDATA, err := p.parseCP()
		if err != nil {
			return nil, false, err
		}
		hasPCDATA = hasPCDATA || childPCDATA
		if child != nil {
			group.Children = append(group.Children, child)
		}
		p.skipSpace()
		c := p.peek()
		if c == ')' {
			p.pos++
			break
		}
		if c != ',' && c != '|' {
			return nil, false, p.errorf("expected ',', '|' or ')' in content group")
		}
		if sep == 0 {
			sep = c
			if c == '|' {
				group.Kind = PChoice
			}
		} else if c != sep {
			return nil, false, p.errorf("mixed ',' and '|' in one group")
		}
		p.pos++
	}
	group.Occurs = p.parseOccurs()
	if len(group.Children) == 1 && !hasPCDATA {
		// Collapse single-member groups: "(a)" ≡ "a", composing indicators.
		only := group.Children[0]
		only.Occurs = composeOccurs(only.Occurs, group.Occurs)
		return only, false, nil
	}
	return group, hasPCDATA, nil
}

// parseCP parses one content particle: a name, #PCDATA, or a nested group.
// It returns nil for #PCDATA (the flag is reported separately).
func (p *dtdParser) parseCP() (*Particle, bool, error) {
	if p.peek() == '%' {
		if err := p.spliceEntity(); err != nil {
			return nil, false, err
		}
		p.skipSpace()
	}
	if strings.HasPrefix(p.src[p.pos:], "#PCDATA") {
		p.pos += len("#PCDATA")
		return nil, true, nil
	}
	if p.peek() == '(' {
		g, pc, err := p.parseGroup()
		if err != nil {
			return nil, false, err
		}
		if pc {
			return nil, false, p.errorf("#PCDATA only allowed in the outermost group")
		}
		return g, false, nil
	}
	name, err := p.parseName()
	if err != nil {
		return nil, false, err
	}
	cp := &Particle{Kind: PName, Name: name}
	cp.Occurs = p.parseOccurs()
	return cp, false, nil
}

func (p *dtdParser) parseOccurs() Occurs {
	switch p.peek() {
	case '?':
		p.pos++
		return Opt
	case '+':
		p.pos++
		return Plus
	case '*':
		p.pos++
		return Star
	default:
		return One
	}
}

func (p *dtdParser) parseAttlistDecl() error {
	p.skipSpace()
	elemName, err := p.parseName()
	if err != nil {
		return err
	}
	// Read to the closing '>' then expand PEs in the body, since ATTLIST
	// bodies (e.g. %Xlink;) commonly come from parameter entities.
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errorf("unterminated ATTLIST for %s", elemName)
	}
	body := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	body, err = p.expandPEs(body)
	if err != nil {
		return err
	}
	attrs, err := p.parseAttrDefs(body)
	if err != nil {
		return err
	}
	elem := p.dtd.Elements[elemName]
	if elem == nil {
		// ATTLIST may precede the ELEMENT declaration; create a
		// placeholder that the later declaration fills in.
		elem = &Element{Name: elemName, Content: ContentAny}
		p.dtd.Elements[elemName] = elem
		p.dtd.Order = append(p.dtd.Order, elemName)
		p.placeholders[elemName] = true
	}
	elem.Attrs = append(elem.Attrs, attrs...)
	return nil
}

// parseAttrDefs parses the attribute definitions in an ATTLIST body.
func (p *dtdParser) parseAttrDefs(body string) ([]Attribute, error) {
	sp := &dtdParser{src: body, dtd: p.dtd}
	var attrs []Attribute
	for {
		sp.skipSpace()
		if sp.eof() {
			return attrs, nil
		}
		name, err := sp.parseName()
		if err != nil {
			return nil, err
		}
		sp.skipSpace()
		var attr Attribute
		attr.Name = name
		rest := sp.src[sp.pos:]
		switch {
		case strings.HasPrefix(rest, "CDATA"):
			attr.Type = AttrCDATA
			sp.pos += len("CDATA")
		case strings.HasPrefix(rest, "IDREFS"):
			attr.Type = AttrIDREFS
			sp.pos += len("IDREFS")
		case strings.HasPrefix(rest, "IDREF"):
			attr.Type = AttrIDREF
			sp.pos += len("IDREF")
		case strings.HasPrefix(rest, "ID"):
			attr.Type = AttrID
			sp.pos += len("ID")
		case strings.HasPrefix(rest, "NMTOKENS"):
			attr.Type = AttrNMTOKENS
			sp.pos += len("NMTOKENS")
		case strings.HasPrefix(rest, "NMTOKEN"):
			attr.Type = AttrNMTOKEN
			sp.pos += len("NMTOKEN")
		case strings.HasPrefix(rest, "ENTITIES"):
			attr.Type = AttrEntities
			sp.pos += len("ENTITIES")
		case strings.HasPrefix(rest, "ENTITY"):
			attr.Type = AttrEntity
			sp.pos += len("ENTITY")
		case strings.HasPrefix(rest, "NOTATION"):
			attr.Type = AttrNotation
			sp.pos += len("NOTATION")
			sp.skipSpace()
			vals, err := sp.parseEnum()
			if err != nil {
				return nil, err
			}
			attr.Enum = vals
		case strings.HasPrefix(rest, "("):
			attr.Type = AttrEnum
			vals, err := sp.parseEnum()
			if err != nil {
				return nil, err
			}
			attr.Enum = vals
		default:
			return nil, sp.errorf("bad attribute type for %s", name)
		}
		sp.skipSpace()
		rest = sp.src[sp.pos:]
		switch {
		case strings.HasPrefix(rest, "#REQUIRED"):
			attr.Default = DefaultRequired
			sp.pos += len("#REQUIRED")
		case strings.HasPrefix(rest, "#IMPLIED"):
			attr.Default = DefaultImplied
			sp.pos += len("#IMPLIED")
		case strings.HasPrefix(rest, "#FIXED"):
			attr.Default = DefaultFixed
			sp.pos += len("#FIXED")
			sp.skipSpace()
			v, err := sp.parseQuoted()
			if err != nil {
				return nil, err
			}
			attr.Value = v
		default:
			attr.Default = DefaultValue
			v, err := sp.parseQuoted()
			if err != nil {
				return nil, err
			}
			attr.Value = v
		}
		attrs = append(attrs, attr)
	}
}

func (p *dtdParser) parseEnum() ([]string, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var vals []string
	for {
		p.skipSpace()
		start := p.pos
		for !p.eof() && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, p.errorf("expected enumeration value")
		}
		vals = append(vals, p.src[start:p.pos])
		p.skipSpace()
		c := p.peek()
		if c == ')' {
			p.pos++
			return vals, nil
		}
		if c != '|' {
			return nil, p.errorf("expected '|' or ')' in enumeration")
		}
		p.pos++
	}
}

func (p *dtdParser) parseQuoted() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", p.errorf("expected quoted value")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", p.errorf("unterminated quoted value")
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}

func (p *dtdParser) parseEntityDecl() error {
	p.skipSpace()
	if p.peek() != '%' {
		// General entity: skip (unused by the mapping algorithms).
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return p.errorf("unterminated ENTITY declaration")
		}
		p.pos += end + 1
		return nil
	}
	p.pos++
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return err
	}
	p.skipSpace()
	text, err := p.parseQuoted()
	if err != nil {
		return err
	}
	p.skipSpace()
	if err := p.expect('>'); err != nil {
		return err
	}
	p.dtd.Entities[name] = text
	return nil
}

// composeOccurs combines nested occurrence indicators, e.g. (a?)* has the
// effective indicator Star.
func composeOccurs(inner, outer Occurs) Occurs {
	if outer == One {
		return inner
	}
	if inner == One {
		return outer
	}
	if inner == Opt && outer == Opt {
		return Opt
	}
	// Any combination involving repetition admits zero or more.
	return Star
}
