package dtd

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestValidateAcceptsConformingPlay(t *testing.T) {
	d := mustParse(t, corpus.PlaysDTD)
	doc := parseDoc(t, `<PLAY>
<INDUCT><TITLE>t</TITLE><SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE></INDUCT>
<ACT><SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE>
<TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></ACT>
</PLAY>`)
	if err := d.Validate(doc); err != nil {
		t.Errorf("conforming play rejected: %v", err)
	}
}

func TestValidateRejectsBadStructure(t *testing.T) {
	d := mustParse(t, corpus.PlaysDTD)
	cases := []struct {
		name, doc, wantMsg string
	}{
		{"unexpected element", `<PLAY><BOGUS/></PLAY>`, "content model"},
		{"missing required child", `<PLAY><ACT><SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE></ACT></PLAY>`, "content model"},
		{"wrong order", `<PLAY><ACT><TITLE>t</TITLE><SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></ACT></PLAY>`, "content model"},
		{"text in element content", `<PLAY>words<ACT><SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></ACT></PLAY>`, "character data"},
		{"element in PCDATA", `<PLAY><ACT><SCENE><TITLE><SPEAKER>x</SPEAKER></TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></SCENE><TITLE>t</TITLE><SPEECH><SPEAKER>s</SPEAKER><LINE>l</LINE></SPEECH></ACT></PLAY>`, "PCDATA-only"},
	}
	for _, tc := range cases {
		doc := parseDoc(t, tc.doc)
		err := d.Validate(doc)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantMsg)
		}
	}
}

func TestValidateMixedContent(t *testing.T) {
	d := mustParse(t, corpus.ShakespeareDTD)
	// LINE is (#PCDATA | STAGEDIR)*.
	line := parseDoc(t, `<LINE>before <STAGEDIR>Aside</STAGEDIR> after</LINE>`)
	if err := d.validateElement(line.Root, "/LINE"); err != nil {
		t.Errorf("mixed LINE rejected: %v", err)
	}
	bad := parseDoc(t, `<LINE>before <SPEAKER>x</SPEAKER></LINE>`)
	if err := d.validateElement(bad.Root, "/LINE"); err == nil {
		t.Error("LINE with SPEAKER accepted")
	}
}

func TestValidateChoiceAndRepetition(t *testing.T) {
	d := mustParse(t, `
<!ELEMENT a ((b | c)+, d?)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
`)
	accept := []string{
		`<a><b>x</b></a>`,
		`<a><c>x</c><b>y</b><c>z</c></a>`,
		`<a><b>x</b><d>w</d></a>`,
	}
	reject := []string{
		`<a></a>`,                         // (b|c)+ needs one
		`<a><d>w</d></a>`,                 // d alone
		`<a><b>x</b><d>w</d><b>y</b></a>`, // b after d
	}
	for _, src := range accept {
		if err := d.Validate(parseDoc(t, src)); err != nil {
			t.Errorf("rejected %s: %v", src, err)
		}
	}
	for _, src := range reject {
		if err := d.Validate(parseDoc(t, src)); err == nil {
			t.Errorf("accepted %s", src)
		}
	}
}

func TestValidateAmbiguousModelBacktracks(t *testing.T) {
	// (a, b) | (a, c): requires trying both branches.
	d := mustParse(t, `
<!ELEMENT r ((a, b) | (a, c))>
<!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>
`)
	if err := d.Validate(parseDoc(t, `<r><a>1</a><c>2</c></r>`)); err != nil {
		t.Errorf("backtracking failed: %v", err)
	}
	if err := d.Validate(parseDoc(t, `<r><a>1</a><a>2</a></r>`)); err == nil {
		t.Error("accepted invalid sequence")
	}
}

func TestValidateStarGreedBacktracks(t *testing.T) {
	// b* followed by b: the star must not consume everything.
	d := mustParse(t, `<!ELEMENT r (b*, b)> <!ELEMENT b (#PCDATA)>`)
	for _, src := range []string{`<r><b>1</b></r>`, `<r><b>1</b><b>2</b><b>3</b></r>`} {
		if err := d.Validate(parseDoc(t, src)); err != nil {
			t.Errorf("rejected %s: %v", src, err)
		}
	}
	if err := d.Validate(parseDoc(t, `<r></r>`)); err == nil {
		t.Error("accepted empty content for (b*, b)")
	}
}

func TestValidateAttributes(t *testing.T) {
	d := mustParse(t, `
<!ELEMENT e (#PCDATA)>
<!ATTLIST e
  req CDATA #REQUIRED
  opt CDATA #IMPLIED
  kind (x|y) "x"
  fix CDATA #FIXED "F">
`)
	accept := []string{
		`<e req="1">t</e>`,
		`<e req="1" opt="2" kind="y" fix="F">t</e>`,
	}
	reject := []struct{ src, msg string }{
		{`<e>t</e>`, "required"},
		{`<e req="1" undeclared="z">t</e>`, "not declared"},
		{`<e req="1" kind="z">t</e>`, "enumeration"},
		{`<e req="1" fix="G">t</e>`, "fixed"},
	}
	for _, src := range accept {
		if err := d.Validate(parseDoc(t, src)); err != nil {
			t.Errorf("rejected %s: %v", src, err)
		}
	}
	for _, tc := range reject {
		err := d.Validate(parseDoc(t, tc.src))
		if err == nil {
			t.Errorf("accepted %s", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: error %q missing %q", tc.src, err, tc.msg)
		}
	}
}

func TestValidateEmptyAndAnyContent(t *testing.T) {
	d := mustParse(t, `<!ELEMENT v EMPTY> <!ELEMENT w ANY> <!ELEMENT z (#PCDATA)>`)
	if err := d.Validate(parseDoc(t, `<v></v>`)); err != nil {
		t.Errorf("empty rejected: %v", err)
	}
	if err := d.Validate(parseDoc(t, `<v>text</v>`)); err == nil {
		t.Error("EMPTY with text accepted")
	}
	if err := d.Validate(parseDoc(t, `<w><z>anything</z>goes</w>`)); err != nil {
		t.Errorf("ANY rejected: %v", err)
	}
}

func TestValidateWhitespaceInElementContent(t *testing.T) {
	// Whitespace-only text between children of element content is
	// permitted (it is not character data in the DTD sense).
	d := mustParse(t, `<!ELEMENT r (b) > <!ELEMENT b (#PCDATA)>`)
	if err := d.Validate(parseDoc(t, "<r>\n  <b>x</b>\n</r>")); err != nil {
		t.Errorf("whitespace rejected: %v", err)
	}
}

func TestValidateUndeclaredUnderAny(t *testing.T) {
	d := mustParse(t, `<!ELEMENT w ANY>`)
	err := d.Validate(parseDoc(t, `<w><ghost/></w>`))
	if err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Errorf("err = %v, want undeclared element", err)
	}
}

func TestValidationErrorRendering(t *testing.T) {
	d := mustParse(t, corpus.PlaysDTD)
	err := d.Validate(parseDoc(t, `<PLAY><ACT><BOGUS/></ACT></PLAY>`))
	verr, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	// The content-model violation surfaces at the parent element.
	if verr.Path != "/PLAY/ACT" {
		t.Errorf("path = %q", verr.Path)
	}
	if !strings.Contains(verr.Error(), "/PLAY/ACT") {
		t.Errorf("Error() = %q", verr.Error())
	}
}
