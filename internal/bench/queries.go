// Package bench is the experiment harness: it builds the paper's two data
// sets at the DSx1/DSx2/DSx4/DSx8 scale points, loads them under both
// mappings, runs the QS and QG workloads plus the QT UDF-overhead pair,
// and formats the results in the shape of the paper's Tables 1-2 and
// Figures 11, 13 and 14.
package bench

// Query pairs the two formulations of one workload query: the SQL over
// the Hybrid relational schema and the SQL over the XORator
// object-relational schema (using the XADT methods).
type Query struct {
	ID          string
	Description string
	Hybrid      string
	XORator     string
}

// ShakespeareQueries returns the §4.3 workload QS1-QS6.
func ShakespeareQueries() []Query {
	return []Query{
		{
			ID:          "QS1",
			Description: "Flattening: list speakers and the lines that they speak",
			Hybrid: `SELECT speaker_value, line_value FROM speaker, line, speech
WHERE speaker_parentID = speechID AND line_parentID = speechID`,
			XORator: `SELECT speech_speaker, speech_line FROM speech`,
		},
		{
			ID:          "QS2",
			Description: "Full path expression: lines that have stage directions",
			Hybrid: `SELECT line_value FROM line, stagedir
WHERE stagedir_parentID = lineID AND stagedir_parentCODE = 'LINE'`,
			XORator: `SELECT getElm(speech_line, 'LINE', 'STAGEDIR', '') FROM speech
WHERE findKeyInElm(speech_line, 'STAGEDIR', '') = 1`,
		},
		{
			ID:          "QS3",
			Description: "Selection: lines whose stage direction contains 'Rising'",
			Hybrid: `SELECT line_value FROM line, stagedir
WHERE stagedir_parentID = lineID AND stagedir_parentCODE = 'LINE'
AND stagedir_value LIKE '%Rising%'`,
			XORator: `SELECT getElm(speech_line, 'LINE', 'STAGEDIR', 'Rising') FROM speech
WHERE findKeyInElm(speech_line, 'STAGEDIR', 'Rising') = 1`,
		},
		{
			ID:          "QS4",
			Description: "Multiple selections: speeches by ROMEO in 'Romeo and Juliet'",
			Hybrid: `SELECT speechID FROM play, act, scene, speech, speaker
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND speaker_parentID = speechID AND speaker_value = 'ROMEO'`,
			XORator: `SELECT speechID FROM play, act, scene, speech
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1`,
		},
		{
			ID:          "QS5",
			Description: "Twig with selection: ROMEO's lines containing 'love' in 'Romeo and Juliet'",
			Hybrid: `SELECT line_value FROM play, act, scene, speech, speaker, line
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND speaker_parentID = speechID AND speaker_value = 'ROMEO'
AND line_parentID = speechID AND line_value LIKE '%love%'`,
			XORator: `SELECT getElm(speech_line, 'LINE', 'LINE', 'love') FROM play, act, scene, speech
WHERE act_parentID = playID AND play_title = 'Romeo and Juliet'
AND scene_parentID = actID AND scene_parentCODE = 'ACT'
AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE'
AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1
AND findKeyInElm(speech_line, 'LINE', 'love') = 1`,
		},
		{
			// The prose describes "speeches that are in prologues", but
			// the paper's Figure 8 query (which we follow) selects the
			// second line of every speech — it is the case where Hybrid
			// reads a childOrder attribute while XORator must scan the
			// XADT to extract elements in order, so Hybrid wins.
			ID:          "QS6",
			Description: "Order access: the second line in each speech (Figure 8)",
			Hybrid: `SELECT line_value FROM speech, line
WHERE line_parentID = speechID AND line_childOrder = 2`,
			XORator: `SELECT getElmIndex(speech_line, '', 'LINE', 2, 2) FROM speech`,
		},
	}
}

// SigmodQueries returns the §4.4 workload QG1-QG6.
func SigmodQueries() []Query {
	return []Query{
		{
			ID:          "QG1",
			Description: "Selection and extraction: authors of papers with 'Join' in the title",
			Hybrid: `SELECT author_value FROM atuple, authors, author
WHERE atuple_title LIKE '%Join%'
AND authors_parentID = atupleID AND author_parentID = authorsID`,
			XORator: `SELECT getElm(getElm(pp_slist, 'aTuple', 'title', 'Join'), 'author', '', '')
FROM pp WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1`,
		},
		{
			ID:          "QG2",
			Description: "Flattening: authors with the section names their papers appear in",
			Hybrid: `SELECT slisttuple_sectionname, author_value
FROM slisttuple, articles, atuple, authors, author
WHERE articles_parentID = slisttupleID AND atuple_parentID = articlesID
AND authors_parentID = atupleID AND author_parentID = authorsID`,
			XORator: `SELECT getElm(s.out, 'sectionName', '', ''), getElm(s.out, 'author', '', '')
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s`,
		},
		{
			ID:          "QG3",
			Description: "Flattening with selection: sections with papers by authors named 'Worthy'",
			Hybrid: `SELECT slisttuple_sectionname
FROM slisttuple, articles, atuple, authors, author
WHERE articles_parentID = slisttupleID AND atuple_parentID = articlesID
AND authors_parentID = atupleID AND author_parentID = authorsID
AND author_value LIKE '%Worthy%'`,
			XORator: `SELECT getElm(s.out, 'sectionName', '', '')
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s
WHERE findKeyInElm(s.out, 'author', 'Worthy') = 1`,
		},
		{
			ID:          "QG4",
			Description: "Aggregation: per author, the number of distinct sections with their papers",
			Hybrid: `SELECT author_value, COUNT(DISTINCT slisttuple_sectionname) AS n
FROM slisttuple, articles, atuple, authors, author
WHERE articles_parentID = slisttupleID AND atuple_parentID = articlesID
AND authors_parentID = atupleID AND author_parentID = authorsID
GROUP BY author_value`,
			XORator: `SELECT xadtInnerText(a.out) AS author, COUNT(DISTINCT xadtInnerText(sn.out)) AS n
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s,
     TABLE(unnest(s.out, 'author')) a, TABLE(unnest(s.out, 'sectionName')) sn
GROUP BY xadtInnerText(a.out)`,
		},
		{
			ID:          "QG5",
			Description: "Aggregation with selection: sections with papers by authors named 'Bird'",
			Hybrid: `SELECT COUNT(DISTINCT slisttuple_sectionname)
FROM slisttuple, articles, atuple, authors, author
WHERE articles_parentID = slisttupleID AND atuple_parentID = articlesID
AND authors_parentID = atupleID AND author_parentID = authorsID
AND author_value LIKE '%Bird%'`,
			XORator: `SELECT COUNT(DISTINCT xadtInnerText(sn.out))
FROM pp, TABLE(unnest(pp_slist, 'sListTuple')) s,
     TABLE(unnest(s.out, 'sectionName')) sn
WHERE findKeyInElm(s.out, 'author', 'Bird') = 1`,
		},
		{
			ID:          "QG6",
			Description: "Order access with selection: second author of papers with 'Join' in the title",
			Hybrid: `SELECT author_value FROM atuple, authors, author
WHERE atuple_title LIKE '%Join%'
AND authors_parentID = atupleID AND author_parentID = authorsID
AND author_childOrder = 2`,
			XORator: `SELECT getElmIndex(a.out, 'authors', 'author', 2, 2)
FROM pp, TABLE(unnest(pp_slist, 'aTuple')) a
WHERE findKeyInElm(a.out, 'title', 'Join') = 1`,
		},
	}
}

// UDFOverheadQueries returns the Figure 14 pair QT1/QT2 in built-in and
// UDF variants; they run against the Hybrid speaker table (the paper
// reports 31,028 result tuples on DSx1).
type UDFQuery struct {
	ID      string
	Builtin string
	UDF     string
}

// UDFQueries returns QT1 and QT2.
func UDFQueries() []UDFQuery {
	return []UDFQuery{
		{
			ID:      "QT1",
			Builtin: `SELECT length(speaker_value) FROM speaker`,
			UDF:     `SELECT udf_length(speaker_value) FROM speaker`,
		},
		{
			ID:      "QT2",
			Builtin: `SELECT substr(speaker_value, 5) FROM speaker`,
			UDF:     `SELECT udf_substr(speaker_value, 5) FROM speaker`,
		},
	}
}
