package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestIndexSmoke runs the full index experiment at reduced scale — the
// `make ci` benchsmoke entry point for the fragment indexes, run under
// -race so indexed plans race against parallel morsel scans and the
// planner-option toggles.
func TestIndexSmoke(t *testing.T) {
	ms, err := RunIndex(ShakespeareDataset(3), SigmodDataset(60), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range ms {
		if !m.Identical {
			t.Errorf("%s: indexed rows differ from scan rows", m.Query)
		}
		if !m.IndexedPlan {
			t.Errorf("%s: expected an IndexedFragScan in the plan", m.Query)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_index.json")
	if err := WriteIndexJSON(path, ms); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("json not written: %v", err)
	}
	if tbl := IndexTable(ms); tbl == "" {
		t.Fatal("empty table")
	}
}
