// Concurrency benchmark: snapshot-session throughput on an MVCC store.
// Reader cells time a fixed budget of snapshot queries while 0, 1, or 4
// writer transactions commit continuously — snapshot isolation promises
// readers never block on writers, so throughput should hold as writers
// are added. Commit cells time the latency of a minimal write
// transaction under each WAL sync policy. Emitted as a report table and
// machine-readable BENCH_concurrent.json.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/wal"
	"repro/internal/xadt"
)

// ConcurrentMeasurement is one cell: either a reader-throughput run
// (Readers > 0) with Writers concurrent committers, or a commit-latency
// run (Commits > 0) under one WAL sync policy.
type ConcurrentMeasurement struct {
	Config  string `json:"config"`
	Readers int    `json:"readers"`
	Writers int    `json:"writers"`
	// WalSync is "none" for unlogged stores, else the sync policy.
	WalSync       string  `json:"wal_sync"`
	Reads         int     `json:"reads"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	Commits       int     `json:"commits"`
	Conflicts     int     `json:"conflicts"`
	CommitMsAvg   float64 `json:"commit_ms_avg"`
	CommitsPerSec float64 `json:"commits_per_sec"`
}

// concurrentStore builds a loaded MVCC store with per-writer counter
// rows (negative playIDs, so they can never alias document rows).
func concurrentStore(ds Dataset, walDir, sync string, writers int) (*core.Store, error) {
	format := xadt.Raw
	cfg := core.Config{Algorithm: core.XORator, ForceFormat: &format,
		Engine: engine.Config{MVCC: true}}
	switch sync {
	case "batch":
		cfg.Engine.WALDir, cfg.Engine.WALSync = walDir, wal.SyncBatch
	case "always":
		cfg.Engine.WALDir, cfg.Engine.WALSync = walDir, wal.SyncAlways
	}
	st, err := core.NewStore(ds.DTD, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := st.AddDocuments(ds.Docs); err != nil {
		return nil, err
	}
	if err := st.CreateDefaultIndexes(); err != nil {
		return nil, err
	}
	if err := st.RunStats(); err != nil {
		return nil, err
	}
	for i := 0; i < writers; i++ {
		stmt := fmt.Sprintf("INSERT INTO play (playID, play_title) VALUES (%d, 'w')", -(i + 1))
		if _, err := st.Exec(stmt); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// runReaderCell times `reads` snapshot queries split across `readers`
// goroutines while `writers` goroutines commit disjoint single-row
// update transactions in a loop (retrying on the rare conflict) until
// the readers finish.
func runReaderCell(ds Dataset, readers, writers, reads int) (ConcurrentMeasurement, error) {
	st, err := concurrentStore(ds, "", "none", writers)
	if err != nil {
		return ConcurrentMeasurement{}, err
	}
	var (
		stop      atomic.Bool
		commits   atomic.Int64
		conflicts atomic.Int64
		firstErr  atomic.Value
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err)
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for !stop.Load() {
				s, err := st.NewSession()
				if err != nil {
					fail(err)
					return
				}
				stmt := fmt.Sprintf("UPDATE play SET play_title = 'w%d' WHERE playID = %d", n, -(w + 1))
				if _, err := s.Exec(stmt); err != nil {
					s.Rollback()
					fail(err)
					return
				}
				switch err := s.Commit(); {
				case err == nil:
					commits.Add(1)
					n++
				case errors.Is(err, core.ErrConflict):
					conflicts.Add(1)
				default:
					fail(err)
					return
				}
			}
		}(w)
	}

	const query = `SELECT COUNT(*) FROM speech`
	perReader := reads / readers
	start := time.Now()
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < perReader && !stop.Load(); i++ {
				s, err := st.NewSession()
				if err != nil {
					fail(err)
					return
				}
				res, err := s.Query(query)
				s.Rollback()
				if err != nil {
					fail(err)
					return
				}
				if len(res.Rows) != 1 {
					fail(fmt.Errorf("reader got %d rows", len(res.Rows)))
					return
				}
			}
		}()
	}
	rg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ConcurrentMeasurement{}, err
	}
	if err := st.Close(); err != nil {
		return ConcurrentMeasurement{}, err
	}
	done := perReader * readers
	return ConcurrentMeasurement{
		Config:      fmt.Sprintf("read-%dw", writers),
		Readers:     readers,
		Writers:     writers,
		WalSync:     "none",
		Reads:       done,
		ReadsPerSec: float64(done) / elapsed.Seconds(),
		Commits:     int(commits.Load()),
		Conflicts:   int(conflicts.Load()),
	}, nil
}

// runCommitCell times `commits` sequential single-row update
// transactions — begin, one UPDATE, commit — under one WAL sync policy
// and reports the mean commit-inclusive transaction latency.
func runCommitCell(ds Dataset, walDir, sync string, commits int) (ConcurrentMeasurement, error) {
	st, err := concurrentStore(ds, walDir, sync, 1)
	if err != nil {
		return ConcurrentMeasurement{}, err
	}
	start := time.Now()
	for i := 0; i < commits; i++ {
		s, err := st.NewSession()
		if err != nil {
			return ConcurrentMeasurement{}, err
		}
		stmt := fmt.Sprintf("UPDATE play SET play_title = 'c%d' WHERE playID = -1", i)
		if _, err := s.Exec(stmt); err != nil {
			s.Rollback()
			return ConcurrentMeasurement{}, err
		}
		if err := s.Commit(); err != nil {
			return ConcurrentMeasurement{}, err
		}
	}
	elapsed := time.Since(start)
	if err := st.Close(); err != nil {
		return ConcurrentMeasurement{}, err
	}
	return ConcurrentMeasurement{
		Config:        "commit-" + sync,
		WalSync:       sync,
		Commits:       commits,
		CommitMsAvg:   float64(elapsed.Nanoseconds()) / float64(commits) / 1e6,
		CommitsPerSec: float64(commits) / elapsed.Seconds(),
	}, nil
}

// RunConcurrent runs the concurrency benchmark: reader throughput with
// 0, 1, and 4 concurrent writers, then commit latency per WAL sync
// policy. WAL-backed cells log to subdirectories of dir on the real
// filesystem, so sync costs are the operating system's.
func RunConcurrent(ds Dataset, dir string, reads, commits int) ([]ConcurrentMeasurement, error) {
	if reads <= 0 {
		reads = 2000
	}
	if commits <= 0 {
		commits = 200
	}
	var out []ConcurrentMeasurement
	const readers = 4
	for _, writers := range []int{0, 1, 4} {
		m, err := runReaderCell(ds, readers, writers, reads)
		if err != nil {
			return nil, fmt.Errorf("concurrent %dw: %w", writers, err)
		}
		out = append(out, m)
	}
	for _, sync := range []string{"none", "batch", "always"} {
		walDir := filepath.Join(dir, "wal-"+sync)
		m, err := runCommitCell(ds, walDir, sync, commits)
		if err != nil {
			return nil, fmt.Errorf("concurrent commit-%s: %w", sync, err)
		}
		if sync != "none" {
			if err := os.RemoveAll(walDir); err != nil {
				return nil, err
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// ConcurrentTable renders the measurements.
func ConcurrentTable(ms []ConcurrentMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Concurrent: snapshot readers vs writers, and commit latency by WAL policy\n")
	fmt.Fprintf(&sb, "%-18s %8s %8s %8s %10s %10s %10s %10s\n",
		"config", "readers", "writers", "wal", "reads/s", "commits", "conflicts", "commit_ms")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-18s %8d %8d %8s %10.1f %10d %10d %10.3f\n",
			m.Config, m.Readers, m.Writers, m.WalSync, m.ReadsPerSec, m.Commits, m.Conflicts, m.CommitMsAvg)
	}
	return sb.String()
}

// WriteConcurrentJSON writes the measurements as a JSON array to path
// (the BENCH_concurrent.json artifact).
func WriteConcurrentJSON(path string, ms []ConcurrentMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
