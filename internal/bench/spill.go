// Memory-bounded execution benchmark: the blocking operators (sort,
// hash-join build, hash aggregate) measured with unlimited memory
// against a per-query budget that forces them to spill, plus the
// ORDER BY + LIMIT Top-N fusion measured against the seed full-sort
// plan (the QS6 shape: rank everything, keep k). Every bounded run must
// return exactly the unbounded run's rows, serially and at DOP N.
// Emitted as a report table and as machine-readable BENCH_spill.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
)

// SpillMeasurement is one operator shape measured unbounded vs bounded.
// For op "topn" the bounded run is the fused TopN plan (the unbounded
// one is the seed Sort+Limit); for the spill ops it is the same query
// under BudgetBytes of tracked memory.
type SpillMeasurement struct {
	Op            string  `json:"op"`
	Query         string  `json:"query"`
	Rows          int     `json:"rows"`
	DOP           int     `json:"dop"`
	BudgetBytes   int64   `json:"budget_bytes"`
	UnboundedMs   float64 `json:"unbounded_ms"`
	BoundedMs     float64 `json:"bounded_ms"`
	Speedup       float64 `json:"speedup"`
	SpillRuns     int64   `json:"spill_runs"`
	SpillBytes    int64   `json:"spill_bytes"`
	MergePasses   int64   `json:"merge_passes"`
	PeakMemBytes  int64   `json:"peak_mem_bytes"`
	Identical     bool    `json:"identical_dop1"`
	IdenticalDopN bool    `json:"identical_dopn"`
}

// buildSpillDB creates an engine database with one synthetic table r of
// n rows sized so that at a few MiB of budget every blocking operator
// overflows: ~150 tracked bytes per row, a shuffled non-unique sort
// key, and 3n/4 distinct group values.
func buildSpillDB(n int) (*engine.Database, error) {
	db := engine.Open(engine.Config{})
	_, err := db.CreateTable("r", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindInt},
		{Name: "val", Type: types.KindInt},
		{Name: "pad", Type: types.KindString},
	})
	if err != nil {
		return nil, err
	}
	tbl := db.Catalog.Table("r")
	filler := strings.Repeat("p", 40)
	groups := 3 * n / 4
	if groups < 1 {
		groups = 1
	}
	for i := 0; i < n; i++ {
		row := []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % groups)),
			types.NewInt(int64((i*7919 + 13) % n)),
			types.NewString(fmt.Sprintf("%06d-%s", i, filler)),
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	if err := db.RunStats(); err != nil {
		return nil, err
	}
	return db, nil
}

// timeEngineQuery is timeQuery for a bare engine database: trimmed mean
// over repeats (minimum 3).
func timeEngineQuery(db *engine.Database, query string, repeats int) (time.Duration, error) {
	if repeats < 3 {
		repeats = 3
	}
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := db.Query(query); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	trimmed := times[1 : len(times)-1]
	var sum time.Duration
	for _, d := range trimmed {
		sum += d
	}
	return sum / time.Duration(len(trimmed)), nil
}

// RunSpill measures Top-N pushdown and budget-forced spilling of the
// three blocking operators on a synthetic table of rows rows. Zero
// arguments select the full-scale defaults (60000 rows, 4 MiB budget).
func RunSpill(rows int, budget int64, dop, repeats int) ([]SpillMeasurement, error) {
	if rows <= 0 {
		rows = 60000
	}
	if budget <= 0 {
		budget = 4 << 20
	}
	if dop < 2 {
		dop = 2
	}
	db, err := buildSpillDB(rows)
	if err != nil {
		return nil, fmt.Errorf("bench: spill fixture: %w", err)
	}

	specs := []struct {
		op    string
		query string
	}{
		{"topn", `SELECT id, val FROM r ORDER BY val, id LIMIT 10`},
		{"sort", `SELECT id, grp, val, pad FROM r ORDER BY val, id`},
		{"join", `SELECT a.id, b.val FROM r a, r b WHERE a.id = b.id`},
		{"aggregate", `SELECT grp, COUNT(*), SUM(val) FROM r GROUP BY grp`},
	}
	var out []SpillMeasurement
	for _, s := range specs {
		// The unbounded cell is the seed behaviour: unlimited memory, and
		// for topn the full Sort+Limit plan.
		unbounded := plan.Options{DOP: 1}
		bounded := plan.Options{DOP: 1}
		boundedPar := plan.Options{DOP: dop}
		cellBudget := int64(0)
		if s.op == "topn" {
			unbounded.DisableTopN = true
		} else {
			cellBudget = budget
			bounded.MemBudgetBytes = budget
			boundedPar.MemBudgetBytes = budget
		}

		db.SetPlannerOptions(bounded)
		if s.op == "topn" {
			ex, err := db.Explain(s.query)
			if err != nil {
				return nil, fmt.Errorf("bench: spill %s: %w", s.op, err)
			}
			if !strings.Contains(ex, "TopN(") {
				return nil, fmt.Errorf("bench: spill topn: plan lacks TopN operator:\n%s", ex)
			}
		}

		db.SetPlannerOptions(unbounded)
		ref, err := db.Query(s.query)
		if err != nil {
			return nil, fmt.Errorf("bench: spill %s unbounded: %w", s.op, err)
		}
		t1, err := timeEngineQuery(db, s.query, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: spill %s unbounded: %w", s.op, err)
		}

		db.SetPlannerOptions(bounded)
		db.ResetSpillStats()
		got, err := db.Query(s.query)
		if err != nil {
			return nil, fmt.Errorf("bench: spill %s bounded: %w", s.op, err)
		}
		stats := db.SpillStats()
		db.SetPlannerOptions(boundedPar)
		gotN, err := db.Query(s.query)
		if err != nil {
			return nil, fmt.Errorf("bench: spill %s bounded dop=%d: %w", s.op, dop, err)
		}
		db.SetPlannerOptions(bounded)
		t2, err := timeEngineQuery(db, s.query, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: spill %s bounded: %w", s.op, err)
		}

		speedup := 0.0
		if t2 > 0 {
			speedup = float64(t1) / float64(t2)
		}
		out = append(out, SpillMeasurement{
			Op:            s.op,
			Query:         s.query,
			Rows:          len(got.Rows),
			DOP:           dop,
			BudgetBytes:   cellBudget,
			UnboundedMs:   float64(t1.Microseconds()) / 1e3,
			BoundedMs:     float64(t2.Microseconds()) / 1e3,
			Speedup:       speedup,
			SpillRuns:     stats.Runs,
			SpillBytes:    stats.SpillBytes,
			MergePasses:   stats.MergePasses,
			PeakMemBytes:  stats.PeakMemBytes,
			Identical:     reflect.DeepEqual(ref.Rows, got.Rows),
			IdenticalDopN: reflect.DeepEqual(ref.Rows, gotN.Rows),
		})
	}
	db.SetPlannerOptions(plan.Options{DOP: 1})
	return out, nil
}

// SpillTable renders the measurements as the repro CLI report.
func SpillTable(ms []SpillMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Memory-bounded execution: unbounded vs budgeted/Top-N plans\n")
	fmt.Fprintf(&sb, "%-10s %8s %4s %10s %12s %10s %8s %5s %10s %7s %9s %6s %6s\n",
		"op", "rows", "dop", "budget_kb", "unbounded_ms", "bounded_ms", "speedup",
		"runs", "spill_kb", "passes", "peak_kb", "ident", "identN")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-10s %8d %4d %10d %12.2f %10.2f %8.2f %5d %10d %7d %9d %6t %6t\n",
			m.Op, m.Rows, m.DOP, m.BudgetBytes>>10, m.UnboundedMs, m.BoundedMs, m.Speedup,
			m.SpillRuns, m.SpillBytes>>10, m.MergePasses, m.PeakMemBytes>>10,
			m.Identical, m.IdenticalDopN)
	}
	return sb.String()
}

// WriteSpillJSON writes the measurements as a JSON array to path
// (conventionally BENCH_spill.json).
func WriteSpillJSON(path string, ms []SpillMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
