package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// smallShakespeare keeps test runtimes low while exercising every query.
func smallShakespeare() Dataset { return ShakespeareDataset(4) }

func smallSigmod() Dataset { return SigmodDataset(60) }

func TestBuildStoreBothAlgorithms(t *testing.T) {
	ds := smallShakespeare()
	h, hload, err := BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, xload, err := BuildStore(ds, core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hload.Stats.Tables != 17 || xload.Stats.Tables != 7 {
		t.Errorf("tables = %d/%d, want 17/7", hload.Stats.Tables, xload.Stats.Tables)
	}
	if hload.LoadTime <= 0 || xload.LoadTime <= 0 {
		t.Error("zero load times")
	}
	// Table 1 shape: XORator database is smaller.
	if xload.Stats.DataBytes >= hload.Stats.DataBytes {
		t.Errorf("XORator data %d >= hybrid %d", xload.Stats.DataBytes, hload.Stats.DataBytes)
	}
	if xload.Stats.IndexBytes >= hload.Stats.IndexBytes {
		t.Errorf("XORator index %d >= hybrid %d", xload.Stats.IndexBytes, hload.Stats.IndexBytes)
	}
	_ = h
	_ = x
}

func TestShakespeareWorkloadRuns(t *testing.T) {
	ds := smallShakespeare()
	hybrid, _, err := BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	xorator, _, err := BuildStore(ds, core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunQueries(hybrid, xorator, ShakespeareQueries(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.HybridTime <= 0 || m.XoratorTime <= 0 {
			t.Errorf("%s has zero time", m.ID)
		}
		if m.Ratio <= 0 {
			t.Errorf("%s ratio = %f", m.ID, m.Ratio)
		}
	}
	// Selection queries must return rows (the keywords are planted).
	byID := map[string]Measurement{}
	for _, m := range ms {
		byID[m.ID] = m
	}
	for _, id := range []string{"QS1", "QS2", "QS3", "QS4", "QS5", "QS6"} {
		if byID[id].HybridRows == 0 {
			t.Errorf("%s hybrid returned no rows", id)
		}
		if byID[id].XoratorRows == 0 {
			t.Errorf("%s xorator returned no rows", id)
		}
	}
	// QS4 answers the same question in both mappings: row counts match.
	if byID["QS4"].HybridRows != byID["QS4"].XoratorRows {
		t.Errorf("QS4 rows differ: %d vs %d", byID["QS4"].HybridRows, byID["QS4"].XoratorRows)
	}
}

func TestSigmodWorkloadRuns(t *testing.T) {
	ds := smallSigmod()
	hybrid, _, err := BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	xorator, xload, err := BuildStore(ds, core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	if xload.Stats.Tables != 1 {
		t.Errorf("xorator sigmod tables = %d, want 1", xload.Stats.Tables)
	}
	ms, err := RunQueries(hybrid, xorator, SigmodQueries(), 3)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Measurement{}
	for _, m := range ms {
		byID[m.ID] = m
	}
	for _, id := range []string{"QG1", "QG2", "QG3", "QG4", "QG5", "QG6"} {
		if byID[id].HybridRows == 0 || byID[id].XoratorRows == 0 {
			t.Errorf("%s returned no rows (h=%d x=%d)", id, byID[id].HybridRows, byID[id].XoratorRows)
		}
	}
	// QG4 groups per author: both mappings see the same author set.
	if byID["QG4"].HybridRows != byID["QG4"].XoratorRows {
		t.Errorf("QG4 groups differ: %d vs %d", byID["QG4"].HybridRows, byID["QG4"].XoratorRows)
	}
	// QG5 is a single-row aggregate in both.
	if byID["QG5"].HybridRows != 1 || byID["QG5"].XoratorRows != 1 {
		t.Errorf("QG5 rows = %d/%d, want 1/1", byID["QG5"].HybridRows, byID["QG5"].XoratorRows)
	}
}

func TestQG5CountsAgree(t *testing.T) {
	ds := smallSigmod()
	hybrid, _, err := BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	xorator, _, err := BuildStore(ds, core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := SigmodQueries()[4]
	hres, err := hybrid.Query(q.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := xorator.Query(q.XORator)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Rows[0][0].Int() != xres.Rows[0][0].Int() {
		t.Errorf("QG5 count: hybrid=%v xorator=%v", hres.Rows[0][0], xres.Rows[0][0])
	}
	if hres.Rows[0][0].Int() == 0 {
		t.Error("QG5 count is zero; 'Bird' not planted?")
	}
}

func TestRunScaledAndReports(t *testing.T) {
	ds := smallShakespeare()
	points, err := RunScaled(ds, ShakespeareQueries()[:2], []int{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[1].Scale != 2 {
		t.Fatalf("points = %+v", points)
	}
	// DSx2 has roughly double the rows of DSx1.
	r1 := points[0].HybridLoad.Stats.Rows
	r2 := points[1].HybridLoad.Stats.Rows
	if r2 != 2*r1 {
		t.Errorf("rows: DSx1=%d DSx2=%d, want doubling", r1, r2)
	}
	fig := FigureTable("Figure 11", points)
	for _, want := range []string{"QS1", "QS2", "loading", "DSx1", "DSx2"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure table missing %q:\n%s", want, fig)
		}
	}
	detail := DetailTable(points[0])
	if !strings.Contains(detail, "QS1") || !strings.Contains(detail, "h_rows") {
		t.Errorf("detail table:\n%s", detail)
	}
	size := SizeTable("Table 1", points[0].HybridLoad, points[0].XoratorLoad)
	for _, want := range []string{"Number of tables", "17", "7", "Database size"} {
		if !strings.Contains(size, want) {
			t.Errorf("size table missing %q:\n%s", want, size)
		}
	}
}

func TestUDFOverhead(t *testing.T) {
	ds := smallShakespeare()
	hybrid, _, err := BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunUDFOverhead(hybrid, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.Rows == 0 {
			t.Errorf("%s returned no rows", m.ID)
		}
		// The UDF path must cost more than the built-in path (Figure 14
		// reports ~40%; the exact factor depends on the host).
		if m.UDFTime <= m.BuiltinTime {
			t.Logf("%s: UDF %v <= builtin %v (timing noise possible on tiny data)",
				m.ID, m.UDFTime, m.BuiltinTime)
		}
	}
	table := UDFTable(ms)
	if !strings.Contains(table, "QT1") || !strings.Contains(table, "QT2") {
		t.Errorf("UDF table:\n%s", table)
	}
}

func TestTimeQueryTrimsOutliers(t *testing.T) {
	ds := smallShakespeare()
	st, _, err := BuildStore(ds, core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, rows, err := timeQuery(st, `SELECT playID FROM play`, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Second || rows != 4 {
		t.Errorf("timeQuery = %v, %d rows", d, rows)
	}
}
