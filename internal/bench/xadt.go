// XADT fast-path benchmark: the Fig-14-style UDF-overhead measurement
// re-run before/after the XADT evaluation accelerator (fragment-header
// fast-reject, worker-private decode caching, and predicate pushdown
// into the scan/apply pipeline). Each query is timed on the same
// headered store with the fast path off (the parse-every-call baseline)
// and on, at DOP 1 and DOP N, verifying byte-identical rows across
// every combination, and once more against a headerless legacy twin
// store to prove seed-era fragments stay readable. Emitted as a report
// table and as machine-readable BENCH_xadt.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/plan"
	"repro/internal/xadt"
)

// XadtMeasurement is one query measured baseline-vs-fast.
type XadtMeasurement struct {
	Query         string  `json:"query"`
	Dataset       string  `json:"dataset"`
	Format        string  `json:"format"`
	BaseDop1Ms    float64 `json:"baseline_dop1_ms"`
	FastDop1Ms    float64 `json:"fast_dop1_ms"`
	SpeedupDop1   float64 `json:"speedup_dop1"`
	BaseDopNMs    float64 `json:"baseline_dopn_ms"`
	FastDopNMs    float64 `json:"fast_dopn_ms"`
	SpeedupDopN   float64 `json:"speedup_dopn"`
	DOP           int     `json:"dop"`
	Rows          int     `json:"rows"`
	IdenticalDop1 bool    `json:"identical_dop1"`
	IdenticalDopN bool    `json:"identical_dopn"`
	LegacyOK      bool    `json:"legacy_ok"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
}

// xadtQuery is one benchmark query bound to a dataset's stores.
type xadtQuery struct {
	id   string
	text string
}

// xadtShakespeareQueries are the Shakespeare-side queries, run against a
// forced-Compressed store so the baseline pays a full decode per method
// call (the paper's worst case) while the fast path consults the header.
func xadtShakespeareQueries() []xadtQuery {
	qs := map[string]string{}
	for _, q := range ShakespeareQueries() {
		qs[q.ID] = q.XORator
	}
	return []xadtQuery{
		// Fast-reject heavy: most speech_line fragments hold no STAGEDIR,
		// so the header filter skips the decode entirely.
		{"QS2", qs["QS2"]},
		{"QS3", qs["QS3"]},
		// Composed probes over the same column: the WHERE predicates parse
		// speech_speaker/speech_line and the projection re-reads
		// speech_line — decode-cache territory.
		{"QS5", qs["QS5"]},
		// Order access: getElmIndex per speech.
		{"QS6", qs["QS6"]},
	}
}

// xadtSigmodQueries are the SIGMOD-side queries: composed getElm calls
// (QG1) and unnest pipelines whose findKeyInElm predicates the planner
// pushes into the apply (QG3, QG5).
func xadtSigmodQueries() []xadtQuery {
	qs := map[string]string{}
	for _, q := range SigmodQueries() {
		qs[q.ID] = q.XORator
	}
	return []xadtQuery{
		{"QG1", qs["QG1"]},
		{"QG3", qs["QG3"]},
		{"QG5", qs["QG5"]},
	}
}

// buildXadtStore loads ds into a fresh XORator store under cfg with
// workload indexes and statistics.
func buildXadtStore(ds Dataset, cfg core.Config) (*core.Store, error) {
	cfg.Algorithm = core.XORator
	st, err := core.NewStore(ds.DTD, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.Load(ds.Docs); err != nil {
		return nil, err
	}
	if err := st.CreateDefaultIndexes(); err != nil {
		return nil, err
	}
	if err := st.RunStats(); err != nil {
		return nil, err
	}
	return st, nil
}

// RunXadt measures the XADT fast path on both datasets. For each query
// the headered store runs with the fast path off and on (DOP 1 and dop),
// and a headerless twin store checks the legacy decode path returns the
// same rows.
func RunXadt(shake, sigmod Dataset, dop, repeats int) ([]XadtMeasurement, error) {
	if dop < 2 {
		dop = 2
	}
	comp := xadt.Compressed
	shakeCfg := core.Config{ForceFormat: &comp}
	var out []XadtMeasurement

	groups := []struct {
		ds      Dataset
		cfg     core.Config
		queries []xadtQuery
	}{
		{shake, shakeCfg, xadtShakespeareQueries()},
		{sigmod, core.Config{}, xadtSigmodQueries()},
	}
	for _, g := range groups {
		st, err := buildXadtStore(g.ds, g.cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: xadt %s store: %w", g.ds.Name, err)
		}
		legacyCfg := g.cfg
		legacyCfg.DisableXADTHeaders = true
		legacy, err := buildXadtStore(g.ds, legacyCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: xadt %s legacy store: %w", g.ds.Name, err)
		}
		for _, q := range g.queries {
			m, err := measureXadt(st, legacy, q, g.ds.Name, dop, repeats)
			if err != nil {
				return nil, fmt.Errorf("bench: xadt %s: %w", q.id, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// measureXadt runs one query through every baseline/fast × DOP cell.
func measureXadt(st, legacy *core.Store, q xadtQuery, dataset string, dop, repeats int) (XadtMeasurement, error) {
	serial := plan.Options{DOP: 1}
	parallel := plan.Options{DOP: dop}
	var zero XadtMeasurement

	type cell struct {
		fast bool
		opts plan.Options
	}
	cells := []cell{
		{false, serial}, {true, serial},
		{false, parallel}, {true, parallel},
	}
	times := make([]float64, len(cells))
	var rows [4]int
	var rowData [4]interface{}
	var hits, misses uint64
	for i, c := range cells {
		st.DB.SetXADTFastPath(c.fast)
		st.DB.SetPlannerOptions(c.opts)
		res, err := st.Query(q.text)
		if err != nil {
			return zero, err
		}
		before := st.DB.XADTCacheStats()
		t, _, err := timeQuery(st, q.text, repeats)
		if err != nil {
			return zero, err
		}
		if c.fast && c.opts.DOP == 1 {
			after := st.DB.XADTCacheStats()
			hits = after.Hits - before.Hits
			misses = after.Misses - before.Misses
		}
		times[i] = float64(t.Microseconds()) / 1e3
		rows[i] = len(res.Rows)
		rowData[i] = res.Rows
	}
	st.DB.SetXADTFastPath(true)
	st.DB.SetPlannerOptions(serial)

	// Legacy store: headerless fragments, fast path on — the header
	// probe must fall through to the seed-era decode and agree.
	legacy.DB.SetPlannerOptions(serial)
	legacyRes, err := legacy.Query(q.text)
	if err != nil {
		return zero, err
	}

	speedup := func(base, fast float64) float64 {
		if fast <= 0 {
			return 0
		}
		return base / fast
	}
	return XadtMeasurement{
		Query:         q.id,
		Dataset:       dataset,
		Format:        st.Format.String(),
		BaseDop1Ms:    times[0],
		FastDop1Ms:    times[1],
		SpeedupDop1:   speedup(times[0], times[1]),
		BaseDopNMs:    times[2],
		FastDopNMs:    times[3],
		SpeedupDopN:   speedup(times[2], times[3]),
		DOP:           dop,
		Rows:          rows[1],
		IdenticalDop1: reflect.DeepEqual(rowData[0], rowData[1]),
		IdenticalDopN: reflect.DeepEqual(rowData[0], rowData[2]) && reflect.DeepEqual(rowData[0], rowData[3]),
		LegacyOK:      reflect.DeepEqual(rowData[0], legacyRes.Rows),
		CacheHits:     hits,
		CacheMisses:   misses,
	}, nil
}

// XadtTable renders the measurements as the repro CLI report.
func XadtTable(ms []XadtMeasurement) string {
	var sb strings.Builder
	sb.WriteString("XADT fast path: parse-every-call baseline vs header filter + decode cache\n")
	fmt.Fprintf(&sb, "%-6s %-12s %-11s %9s %9s %8s %9s %9s %8s %6s %5s %6s %10s\n",
		"query", "dataset", "format", "base1_ms", "fast1_ms", "speedup",
		"baseN_ms", "fastN_ms", "speedupN", "rows", "ident", "legacy", "hit/miss")
	for _, m := range ms {
		ident := m.IdenticalDop1 && m.IdenticalDopN
		fmt.Fprintf(&sb, "%-6s %-12s %-11s %9.2f %9.2f %8.2f %9.2f %9.2f %8.2f %6d %5t %6t %4d/%d\n",
			m.Query, m.Dataset, m.Format, m.BaseDop1Ms, m.FastDop1Ms, m.SpeedupDop1,
			m.BaseDopNMs, m.FastDopNMs, m.SpeedupDopN, m.Rows, ident, m.LegacyOK,
			m.CacheHits, m.CacheMisses)
	}
	return sb.String()
}

// WriteXadtJSON writes the measurements as a JSON array to path
// (conventionally BENCH_xadt.json).
func WriteXadtJSON(path string, ms []XadtMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
