// Parallel-execution benchmark: every workload query timed at DOP 1 and
// DOP N against the same store, verifying identical results and
// reporting the wall-clock speedup. Emitted both as a report table and
// as machine-readable BENCH_parallel.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/plan"
)

// ParallelMeasurement is one query timed serially and in parallel.
type ParallelMeasurement struct {
	Query     string  `json:"query"`
	Mapping   string  `json:"mapping"` // "hybrid" or "xorator"
	DOP       int     `json:"dop"`
	Dop1Ms    float64 `json:"dop1_ms"`
	DopNMs    float64 `json:"dopn_ms"`
	Speedup   float64 `json:"speedup"`
	Rows      int     `json:"rows"`
	Identical bool    `json:"identical"`
}

// RunParallel times every query at DOP 1 and DOP dop against the store,
// checking that both runs return identical rows (order included — the
// exchange is order-preserving). mapping selects which SQL text of each
// Query runs; it must match the store's mapping.
func RunParallel(st *core.Store, queries []Query, mapping string, dop, repeats int) ([]ParallelMeasurement, error) {
	if dop < 2 {
		dop = 2
	}
	serialOpts := plan.Options{DOP: 1}
	parOpts := plan.Options{DOP: dop}
	var out []ParallelMeasurement
	for _, q := range queries {
		text := q.Hybrid
		if mapping == "xorator" {
			text = q.XORator
		}
		st.DB.SetPlannerOptions(serialOpts)
		want, err := st.Query(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s serial: %w", q.ID, err)
		}
		t1, _, err := timeQuery(st, text, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s dop=1: %w", q.ID, err)
		}
		st.DB.SetPlannerOptions(parOpts)
		got, err := st.Query(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s dop=%d: %w", q.ID, dop, err)
		}
		tn, _, err := timeQuery(st, text, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s dop=%d: %w", q.ID, dop, err)
		}
		speedup := 0.0
		if tn > 0 {
			speedup = float64(t1) / float64(tn)
		}
		out = append(out, ParallelMeasurement{
			Query:     q.ID,
			Mapping:   mapping,
			DOP:       dop,
			Dop1Ms:    float64(t1.Microseconds()) / 1e3,
			DopNMs:    float64(tn.Microseconds()) / 1e3,
			Speedup:   speedup,
			Rows:      len(got.Rows),
			Identical: reflect.DeepEqual(got.Rows, want.Rows),
		})
	}
	st.DB.SetPlannerOptions(serialOpts)
	return out, nil
}

// ParallelTable renders the measurements with the parallel_speedup
// column the repro CLI prints.
func ParallelTable(ms []ParallelMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Parallel execution: DOP 1 vs DOP N response times\n")
	fmt.Fprintf(&sb, "%-8s %-8s %4s %10s %10s %16s %8s %10s\n",
		"query", "mapping", "dop", "dop1_ms", "dopn_ms", "parallel_speedup", "rows", "identical")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-8s %-8s %4d %10.2f %10.2f %16.2f %8d %10t\n",
			m.Query, m.Mapping, m.DOP, m.Dop1Ms, m.DopNMs, m.Speedup, m.Rows, m.Identical)
	}
	return sb.String()
}

// WriteParallelJSON writes the measurements as a JSON array to path
// (conventionally BENCH_parallel.json).
func WriteParallelJSON(path string, ms []ParallelMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
