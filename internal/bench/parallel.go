// Parallel-execution benchmark: every workload query timed at DOP 1 and
// DOP N against the same store, verifying identical results and
// reporting the wall-clock speedup. Emitted both as a report table and
// as machine-readable BENCH_parallel.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/plan"
)

// ParallelMeasurement is one query timed serially and in parallel.
// SamePlan reports whether the cost gate produced the identical plan at
// both DOPs (true whenever the modeled parallel win doesn't clear the
// exchange overhead — always on a single-CPU host): the speedup is then
// sampling noise around 1.0, not a gate regression.
type ParallelMeasurement struct {
	Query     string  `json:"query"`
	Mapping   string  `json:"mapping"` // "hybrid" or "xorator"
	DOP       int     `json:"dop"`
	Dop1Ms    float64 `json:"dop1_ms"`
	DopNMs    float64 `json:"dopn_ms"`
	Speedup   float64 `json:"speedup"`
	Rows      int     `json:"rows"`
	Identical bool    `json:"identical"`
	SamePlan  bool    `json:"same_plan"`
}

// RunParallel times every query at DOP 1 and DOP dop against the store,
// checking that both runs return identical rows (order included — the
// exchange is order-preserving). mapping selects which SQL text of each
// Query runs; it must match the store's mapping.
func RunParallel(st *core.Store, queries []Query, mapping string, dop, repeats int) ([]ParallelMeasurement, error) {
	if dop < 2 {
		dop = 2
	}
	serialOpts := plan.Options{DOP: 1}
	parOpts := plan.Options{DOP: dop}
	var out []ParallelMeasurement
	for _, q := range queries {
		text := q.Hybrid
		if mapping == "xorator" {
			text = q.XORator
		}
		st.DB.SetPlannerOptions(serialOpts)
		want, err := st.Query(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s serial: %w", q.ID, err)
		}
		serialPlan, err := st.DB.Explain(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s explain serial: %w", q.ID, err)
		}
		st.DB.SetPlannerOptions(parOpts)
		got, err := st.Query(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s dop=%d: %w", q.ID, dop, err)
		}
		parPlan, err := st.DB.Explain(text)
		if err != nil {
			return nil, fmt.Errorf("bench: %s explain dop=%d: %w", q.ID, dop, err)
		}
		// Interleave the two configurations inside one sampling loop:
		// timing all DOP-1 samples before all DOP-N samples lets
		// allocator/GC drift penalize whichever config runs second,
		// skewing the ratio even when the plans are identical.
		t1, tn, err := timeMinPair(st.DB, text, serialOpts, parOpts, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s timing: %w", q.ID, err)
		}
		if samePlan := parPlan == serialPlan; samePlan {
			// The gate kept the plan serial at DOP N, so both cells
			// timed the same executable — planner options are consumed
			// entirely at plan time. Pool the samples into one minimum
			// rather than letting two noisy estimates of one quantity
			// fabricate a ratio away from its true value of 1.0.
			if tn < t1 {
				t1 = tn
			} else {
				tn = t1
			}
		}
		speedup := 0.0
		if tn > 0 {
			speedup = float64(t1) / float64(tn)
		}
		out = append(out, ParallelMeasurement{
			Query:     q.ID,
			Mapping:   mapping,
			DOP:       dop,
			Dop1Ms:    float64(t1.Microseconds()) / 1e3,
			DopNMs:    float64(tn.Microseconds()) / 1e3,
			Speedup:   speedup,
			Rows:      len(got.Rows),
			Identical: reflect.DeepEqual(got.Rows, want.Rows),
			SamePlan:  parPlan == serialPlan,
		})
	}
	st.DB.SetPlannerOptions(serialOpts)
	return out, nil
}

// ParallelTable renders the measurements with the parallel_speedup
// column the repro CLI prints.
func ParallelTable(ms []ParallelMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Parallel execution: DOP 1 vs DOP N response times\n")
	fmt.Fprintf(&sb, "%-8s %-8s %4s %10s %10s %16s %8s %10s %9s\n",
		"query", "mapping", "dop", "dop1_ms", "dopn_ms", "parallel_speedup", "rows", "identical", "same_plan")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-8s %-8s %4d %10.2f %10.2f %16.2f %8d %10t %9t\n",
			m.Query, m.Mapping, m.DOP, m.Dop1Ms, m.DopNMs, m.Speedup, m.Rows, m.Identical, m.SamePlan)
	}
	return sb.String()
}

// WriteParallelJSON writes the measurements as a JSON array to path
// (conventionally BENCH_parallel.json).
func WriteParallelJSON(path string, ms []ParallelMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
