// Vectorized execution benchmark: the same queries run on the seed
// row-at-a-time engine (DisableVectorized) and on the batch-at-a-time
// engine, at DOP 1 and DOP N, with the rows required identical cell by
// cell. The query set covers the shapes vectorization targets — a
// selective scan+filter, a grouped aggregation, a filtered COUNT(*) —
// plus a Top-N that stays row-wise above a vectorized scan, guarding
// against shim regressions. Emitted as a report table and as
// machine-readable BENCH_vector.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
)

// VectorMeasurement is one query shape at one DOP, row engine vs
// vectorized engine.
type VectorMeasurement struct {
	Op        string  `json:"op"`
	Query     string  `json:"query"`
	TableRows int     `json:"table_rows"`
	OutRows   int     `json:"out_rows"`
	DOP       int     `json:"dop"`
	RowMs     float64 `json:"row_ms"`
	VecMs     float64 `json:"vec_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// buildVectorDB creates a database with one synthetic table r of n rows
// shaped for kernel measurement: a shuffled non-unique value column for
// selective filters and 64 groups so aggregation is accumulation-bound
// rather than group-creation-bound. All columns are integers so the
// measurement isolates iteration and kernel cost rather than the string
// decode allocations both engines pay identically.
func buildVectorDB(n int) (*engine.Database, error) {
	db := engine.Open(engine.Config{})
	_, err := db.CreateTable("r", []catalog.Column{
		{Name: "id", Type: types.KindInt},
		{Name: "grp", Type: types.KindInt},
		{Name: "val", Type: types.KindInt},
	})
	if err != nil {
		return nil, err
	}
	tbl := db.Catalog.Table("r")
	for i := 0; i < n; i++ {
		row := []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 64)),
			types.NewInt(int64((i*7919 + 13) % n)),
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	if err := db.RunStats(); err != nil {
		return nil, err
	}
	return db, nil
}

// RunVector measures the row engine against the vectorized engine on a
// synthetic table of rows rows, at DOP 1 and DOP dop. Zero arguments
// select the full-scale defaults (60000 rows, DOP 4).
func RunVector(rows, dop, repeats int) ([]VectorMeasurement, error) {
	if rows <= 0 {
		rows = 60000
	}
	if dop < 2 {
		dop = 4
	}
	db, err := buildVectorDB(rows)
	if err != nil {
		return nil, fmt.Errorf("bench: vector fixture: %w", err)
	}

	specs := []struct {
		op    string
		query string
	}{
		{"scan-filter", fmt.Sprintf(`SELECT id, val FROM r WHERE val > %d`, 9*rows/10)},
		{"scan-wide", fmt.Sprintf(`SELECT id, val FROM r WHERE val > %d`, rows/2)},
		{"aggregate", `SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM r GROUP BY grp`},
		{"count-filter", fmt.Sprintf(`SELECT COUNT(*) FROM r WHERE val > %d`, rows/4)},
		{"topn", `SELECT id, val FROM r ORDER BY val, id LIMIT 10`},
	}
	var out []VectorMeasurement
	for _, s := range specs {
		for _, d := range []int{1, dop} {
			rowOpts := plan.Options{DOP: d, DisableVectorized: true}
			vecOpts := plan.Options{DOP: d}

			db.SetPlannerOptions(vecOpts)
			ex, err := db.Explain(s.query)
			if err != nil {
				return nil, fmt.Errorf("bench: vector %s: %w", s.op, err)
			}
			if !strings.Contains(ex, "[vec]") {
				return nil, fmt.Errorf("bench: vector %s: plan has no vectorized operator:\n%s", s.op, ex)
			}
			got, err := db.Query(s.query)
			if err != nil {
				return nil, fmt.Errorf("bench: vector %s vec dop=%d: %w", s.op, d, err)
			}
			tVec, err := timeEngineQuery(db, s.query, repeats)
			if err != nil {
				return nil, fmt.Errorf("bench: vector %s vec dop=%d: %w", s.op, d, err)
			}

			db.SetPlannerOptions(rowOpts)
			ref, err := db.Query(s.query)
			if err != nil {
				return nil, fmt.Errorf("bench: vector %s row dop=%d: %w", s.op, d, err)
			}
			tRow, err := timeEngineQuery(db, s.query, repeats)
			if err != nil {
				return nil, fmt.Errorf("bench: vector %s row dop=%d: %w", s.op, d, err)
			}

			speedup := 0.0
			if tVec > 0 {
				speedup = float64(tRow) / float64(tVec)
			}
			out = append(out, VectorMeasurement{
				Op:        s.op,
				Query:     s.query,
				TableRows: rows,
				OutRows:   len(got.Rows),
				DOP:       d,
				RowMs:     float64(tRow.Microseconds()) / 1e3,
				VecMs:     float64(tVec.Microseconds()) / 1e3,
				Speedup:   speedup,
				Identical: reflect.DeepEqual(ref.Rows, got.Rows),
			})
		}
	}
	db.SetPlannerOptions(plan.Options{DOP: 1})
	return out, nil
}

// VectorTable renders the measurements as the repro CLI report.
func VectorTable(ms []VectorMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Vectorized batch execution: row engine vs columnar kernels\n")
	fmt.Fprintf(&sb, "%-12s %10s %9s %4s %9s %9s %8s %6s\n",
		"op", "table_rows", "out_rows", "dop", "row_ms", "vec_ms", "speedup", "ident")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-12s %10d %9d %4d %9.2f %9.2f %8.2f %6t\n",
			m.Op, m.TableRows, m.OutRows, m.DOP, m.RowMs, m.VecMs, m.Speedup, m.Identical)
	}
	return sb.String()
}

// WriteVectorJSON writes the measurements as a JSON array to path
// (conventionally BENCH_vector.json).
func WriteVectorJSON(path string, ms []VectorMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
