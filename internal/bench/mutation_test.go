package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMutationSmoke runs the update-workload benchmark at reduced
// scale: all five cells must complete the identical DML stream, the
// Hybrid and XORator cells must affect the same number of rows (same
// statements over shared relations), and BENCH_mutation.json must
// parse. CI runs this under the race detector with the other smokes.
func TestMutationSmoke(t *testing.T) {
	ds := ShakespeareDataset(2)
	dir := t.TempDir()
	ms, err := RunMutation(ds, dir, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("cells = %d, want 5", len(ms))
	}
	wantConfigs := []string{"hybrid", "xorator", "xorator-scan", "xorator-wal-batch", "xorator-wal-always"}
	for i, m := range ms {
		if m.Config != wantConfigs[i] {
			t.Errorf("cell %d = %s, want %s", i, m.Config, wantConfigs[i])
		}
		if m.DMLOps == 0 || m.DMLOpsPerSec <= 0 {
			t.Errorf("cell %s: implausible measurement %+v", m.Config, m)
		}
		if m.RowsAffected != ms[0].RowsAffected {
			t.Errorf("cell %s affected %d rows, baseline affected %d — same statements must pick the same victims",
				m.Config, m.RowsAffected, ms[0].RowsAffected)
		}
	}

	out := filepath.Join(dir, "BENCH_mutation.json")
	if err := WriteMutationJSON(out, ms); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []MutationMeasurement
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(parsed) != len(ms) {
		t.Fatalf("artifact rows = %d, want %d", len(parsed), len(ms))
	}
	if MutationTable(ms) == "" {
		t.Fatal("empty table rendering")
	}
}
