package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSchemasGolden pins the Figures 5 & 6 schema rendering. Any change
// to the DTD simplifier, the mapping algorithms, or the schema printer
// shows up as a diff against testdata/schemas.golden; run with -update
// after reviewing an intentional change.
func TestSchemasGolden(t *testing.T) {
	got, err := SchemasReport()
	if err != nil {
		t.Fatalf("SchemasReport: %v", err)
	}
	path := filepath.Join("testdata", "schemas.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("schema report differs from %s.\nIf the change is intentional, rerun with -update.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
