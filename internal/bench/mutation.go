// Update-workload benchmark: a seeded stream of SQL DML (point and
// range UPDATE/DELETE, multi-row INSERT) plus whole-document churn
// (remove + re-add) applied to freshly loaded stores. Cells compare the
// Hybrid and XORator mappings, B+tree-assisted DML against forced-scan
// DML, and the WAL off/batch/always durability costs of the same
// history. Emitted as a report table and machine-readable
// BENCH_mutation.json.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/plan"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
)

// MutationMeasurement is one configuration cell: the same DML stream and
// document churn timed under one mapping / access-path / durability
// combination.
type MutationMeasurement struct {
	Config  string `json:"config"`
	Mapping string `json:"mapping"`
	// WalSync is "none" for unlogged stores, else the sync policy.
	WalSync string `json:"wal_sync"`
	// IndexedDML is false when the WHERE access path is forced to scan.
	IndexedDML   bool    `json:"indexed_dml"`
	DMLOps       int     `json:"dml_ops"`
	DMLMs        float64 `json:"dml_ms"`
	DMLOpsPerSec float64 `json:"dml_ops_per_sec"`
	DocChurn     int     `json:"doc_churn"`
	DocChurnMs   float64 `json:"doc_churn_ms"`
	RowsAffected int     `json:"rows_affected"`
}

// mutationWorkload is the pre-generated statement stream, identical for
// every cell so timings are comparable.
type mutationWorkload struct {
	stmts []string
	churn int
}

var mutationWords = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

// genMutationWorkload derives a DML stream over the relations both
// mappings share, so Hybrid and XORator cells execute byte-identical
// statements. IDs for INSERT are negative: the shredder counts up from
// one, so synthetic rows can never alias a document row.
func genMutationWorkload(hy, xo *mapping.Schema, maxID map[string]int64, ops int) mutationWorkload {
	type target struct {
		table   string
		idCol   string
		strCols []string
	}
	var targets []target
	for _, xr := range xo.Relations {
		hr := hy.Relation(xr.Name)
		if hr == nil || hr.Element != xr.Element || maxID[xr.Name] == 0 {
			continue
		}
		tg := target{table: xr.Name, idCol: xr.IDColumn()}
		if tg.idCol == "" {
			continue
		}
		for _, c := range xr.Columns {
			if c.Type != mapping.String {
				continue
			}
			if hc, ok := hr.Column(c.Name); ok && hc.Kind == c.Kind {
				tg.strCols = append(tg.strCols, c.Name)
			}
		}
		if len(tg.strCols) > 0 {
			targets = append(targets, tg)
		}
	}
	rng := rand.New(rand.NewSource(7))
	w := mutationWorkload{churn: 4}
	if len(targets) == 0 {
		return w
	}
	neg := int64(-1)
	for i := 0; i < ops; i++ {
		tg := targets[rng.Intn(len(targets))]
		max := maxID[tg.table]
		id := 1 + rng.Int63n(max)
		word := mutationWords[rng.Intn(len(mutationWords))]
		col := tg.strCols[rng.Intn(len(tg.strCols))]
		switch rng.Intn(5) {
		case 0, 1: // point update (indexable WHERE)
			w.stmts = append(w.stmts, fmt.Sprintf(
				"UPDATE %s SET %s = '%s' WHERE %s = %d", tg.table, col, word, tg.idCol, id))
		case 2: // small range update
			w.stmts = append(w.stmts, fmt.Sprintf(
				"UPDATE %s SET %s = '%s' WHERE %s >= %d AND %s <= %d",
				tg.table, col, word, tg.idCol, id, tg.idCol, id+4))
		case 3: // point delete
			w.stmts = append(w.stmts, fmt.Sprintf(
				"DELETE FROM %s WHERE %s = %d", tg.table, tg.idCol, id))
		default: // insert a synthetic row
			w.stmts = append(w.stmts, fmt.Sprintf(
				"INSERT INTO %s (%s, %s) VALUES (%d, '%s')", tg.table, tg.idCol, col, neg, word))
			neg--
		}
	}
	return w
}

// RunMutation times the update workload. WAL-backed cells log to
// subdirectories of dir on the real filesystem, so sync costs are the
// operating system's. Each cell rebuilds its store from scratch per
// repeat (mutations are destructive) and keeps the fastest run.
func RunMutation(ds Dataset, dir string, ops, repeats int) ([]MutationMeasurement, error) {
	if ops <= 0 {
		ops = 400
	}
	if repeats <= 0 {
		repeats = 3
	}
	format := xadt.Raw
	// Schemas (and the initial ID range) are needed up front to generate
	// the shared statement stream; derive them from throwaway stores.
	probeHy, err := core.NewStore(ds.DTD, core.Config{Algorithm: core.Hybrid, ForceFormat: &format})
	if err != nil {
		return nil, err
	}
	probeXo, err := core.NewStore(ds.DTD, core.Config{Algorithm: core.XORator, ForceFormat: &format})
	if err != nil {
		return nil, err
	}
	if _, err := probeHy.AddDocuments(ds.Docs); err != nil {
		return nil, err
	}
	maxID := map[string]int64{}
	for _, rel := range probeHy.Schema.Relations {
		if t := probeHy.Table(rel.Name); t != nil {
			maxID[rel.Name] = int64(t.Rows()) // loader IDs are 1..N
		}
	}
	work := genMutationWorkload(probeHy.Schema, probeXo.Schema, maxID, ops)
	if len(work.stmts) == 0 {
		return nil, fmt.Errorf("mutation: no shared DML targets in dataset %s", ds.Name)
	}

	cells := []struct {
		config  string
		alg     core.Algorithm
		sync    string
		indexed bool
	}{
		{"hybrid", core.Hybrid, "none", true},
		{"xorator", core.XORator, "none", true},
		{"xorator-scan", core.XORator, "none", false},
		{"xorator-wal-batch", core.XORator, "batch", true},
		{"xorator-wal-always", core.XORator, "always", true},
	}
	var out []MutationMeasurement
	for ci, cell := range cells {
		var bestDML, bestChurn time.Duration
		affected := 0
		for rep := 0; rep < repeats; rep++ {
			cfg := core.Config{Algorithm: cell.alg, ForceFormat: &format}
			walDir := filepath.Join(dir, fmt.Sprintf("wal-%d-%d", ci, rep))
			switch cell.sync {
			case "batch":
				cfg.Engine = engine.Config{WALDir: walDir, WALSync: wal.SyncBatch}
			case "always":
				cfg.Engine = engine.Config{WALDir: walDir, WALSync: wal.SyncAlways}
			}
			st, err := core.NewStore(ds.DTD, cfg)
			if err != nil {
				return nil, fmt.Errorf("mutation %s: %w", cell.config, err)
			}
			ids, err := st.AddDocuments(ds.Docs)
			if err != nil {
				return nil, fmt.Errorf("mutation %s: %w", cell.config, err)
			}
			if err := st.CreateDefaultIndexes(); err != nil {
				return nil, err
			}
			if err := st.RunStats(); err != nil {
				return nil, err
			}
			if !cell.indexed {
				st.DB.SetPlannerOptions(plan.Options{DOP: 1, DisableIndexScan: true})
			}
			n := 0
			start := time.Now()
			for _, stmt := range work.stmts {
				c, err := st.Exec(stmt)
				if err != nil {
					return nil, fmt.Errorf("mutation %s: %q: %w", cell.config, stmt, err)
				}
				n += int(c)
			}
			dml := time.Since(start)
			start = time.Now()
			for i := 0; i < work.churn && i < len(ids); i++ {
				if err := st.RemoveDocument(ids[i]); err != nil {
					return nil, fmt.Errorf("mutation %s: remove doc %d: %w", cell.config, ids[i], err)
				}
				if _, err := st.AddDocuments(ds.Docs[i : i+1]); err != nil {
					return nil, fmt.Errorf("mutation %s: re-add doc: %w", cell.config, err)
				}
			}
			churn := time.Since(start)
			if err := st.Close(); err != nil {
				return nil, err
			}
			if cell.sync != "none" {
				if err := os.RemoveAll(walDir); err != nil {
					return nil, err
				}
			}
			if bestDML == 0 || dml < bestDML {
				bestDML = dml
			}
			if bestChurn == 0 || churn < bestChurn {
				bestChurn = churn
			}
			affected = n
		}
		out = append(out, MutationMeasurement{
			Config:       cell.config,
			Mapping:      map[core.Algorithm]string{core.Hybrid: "hybrid", core.XORator: "xorator"}[cell.alg],
			WalSync:      cell.sync,
			IndexedDML:   cell.indexed,
			DMLOps:       len(work.stmts),
			DMLMs:        float64(bestDML.Nanoseconds()) / 1e6,
			DMLOpsPerSec: float64(len(work.stmts)) / bestDML.Seconds(),
			DocChurn:     work.churn,
			DocChurnMs:   float64(bestChurn.Nanoseconds()) / 1e6,
			RowsAffected: affected,
		})
	}
	return out, nil
}

// MutationTable renders the measurements.
func MutationTable(ms []MutationMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Mutation: update-workload throughput by mapping, DML access path, and WAL policy\n")
	fmt.Fprintf(&sb, "%-20s %8s %8s %10s %10s %10s %9s\n",
		"config", "wal", "dml_ops", "dml_ms", "ops_per_s", "affected", "churn_ms")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-20s %8s %8d %10.1f %10.1f %10d %9.1f\n",
			m.Config, m.WalSync, m.DMLOps, m.DMLMs, m.DMLOpsPerSec, m.RowsAffected, m.DocChurnMs)
	}
	return sb.String()
}

// WriteMutationJSON writes the measurements as a JSON array to path (the
// BENCH_mutation.json artifact).
func WriteMutationJSON(path string, ms []MutationMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
