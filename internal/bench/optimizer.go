// Cost-based-optimizer benchmark: the statistics-driven planner against
// its two ablation baselines on the same synthetic store. The join-order
// half times a three-table chain join whose greedy order (start at the
// smallest table) builds a huge intermediate, against the DP order that
// joins the selective edge first. The cost-gate half times queries at
// DOP 1 and DOP N with the adaptive gate deciding parallelism: a scan
// with per-row predicate work should cross the gate and speed up, while
// a sub-page lookup should stay serial and cost nothing. Emitted as a
// report table and as machine-readable BENCH_optimizer.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/plan"
	"repro/internal/engine/types"
)

// OptimizerMeasurement is one query under a baseline and the cost-based
// planner. For join-order rows the baseline is the greedy planner
// (DisableCostModel); for gate rows the baseline is the same plan at
// DOP 1.
type OptimizerMeasurement struct {
	Kind        string  `json:"kind"` // "joinorder" or "gate"
	Query       string  `json:"query"`
	BaselineMs  float64 `json:"baseline_ms"`
	CostMs      float64 `json:"cost_ms"`
	Speedup     float64 `json:"speedup"`
	Rows        int     `json:"rows"`
	Identical   bool    `json:"identical"`
	PlansDiffer bool    `json:"plans_differ"`
	DOP         int     `json:"dop,omitempty"`
	// Parallel records whether the adaptive gate actually fragmented the
	// scan on this machine (it consults the real processor count, so a
	// single-CPU host correctly plans everything serially).
	Parallel bool `json:"parallel,omitempty"`
	// WouldParallel records the gate's decision assuming DOP processors
	// were available — the machine-independent half of the gate contract.
	WouldParallel bool `json:"would_parallel,omitempty"`
}

// buildOptimizerDB creates the join-order fixture: a small dimension a
// (joined to b over a 4-value key, so a⋈b explodes) and two large
// tables b and c joined over a unique key (so b⋈c is 1:1). The greedy
// planner starts at a — the smallest table — and pays the explosion;
// the DP order joins b⋈c first. A separate wide table drives the
// parallelism gate.
func buildOptimizerDB(n int) (*engine.Database, error) {
	db := engine.Open(engine.Config{})
	mk := func(name string, cols []catalog.Column, rows int, gen func(i int) []types.Value) error {
		if _, err := db.CreateTable(name, cols); err != nil {
			return err
		}
		tbl := db.Catalog.Table(name)
		for i := 0; i < rows; i++ {
			if err := tbl.Insert(gen(i)); err != nil {
				return err
			}
		}
		return nil
	}
	intCols := func(names ...string) []catalog.Column {
		cols := make([]catalog.Column, len(names))
		for i, nm := range names {
			cols[i] = catalog.Column{Name: nm, Type: types.KindInt}
		}
		return cols
	}
	small := n / 20
	if small < 8 {
		small = 8
	}
	if err := mk("a", intCols("a_id", "a_ab"), small, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4))}
	}); err != nil {
		return nil, err
	}
	if err := mk("b", intCols("b_id", "b_ab", "b_bc"), n, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i % 4)), types.NewInt(int64(i))}
	}); err != nil {
		return nil, err
	}
	if err := mk("c", intCols("c_id", "c_bc"), n, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64(i))}
	}); err != nil {
		return nil, err
	}
	wideCols := []catalog.Column{
		{Name: "w_id", Type: types.KindInt},
		{Name: "w_grp", Type: types.KindInt},
		{Name: "w_val", Type: types.KindInt},
		{Name: "w_s", Type: types.KindString},
	}
	if err := mk("wide", wideCols, 8*n, func(i int) []types.Value {
		return []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 64)),
			types.NewInt(int64((i*7919 + 13) % (8 * n))),
			types.NewString(fmt.Sprintf("row-%d payload-%x-%x-%x tail-%d",
				i, i*2654435761, i*40503, i*9973, i%97)),
		}
	}); err != nil {
		return nil, err
	}
	if err := mk("mid", intCols("m_id", "m_val"), 1500, func(i int) []types.Value {
		return []types.Value{types.NewInt(int64(i)), types.NewInt(int64((i * 31) % 1500))}
	}); err != nil {
		return nil, err
	}
	if err := db.RunStats(); err != nil {
		return nil, err
	}
	return db, nil
}

// timeMinQuery returns the fastest of repeats runs — the robust
// statistic for "is configuration X no slower than Y" comparisons,
// where a single scheduler hiccup must not read as a regression.
func timeMinQuery(db *engine.Database, query string, repeats int) (time.Duration, error) {
	if repeats < 5 {
		repeats = 5
	}
	times := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := db.Query(query); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[0], nil
}

// timeMinPair times one query under two planner configurations with
// interleaved samples, returning the per-configuration minimums.
// Alternating the configurations inside one loop exposes both to the
// same allocator and GC drift; timing them back-to-back instead makes
// whichever runs second look slower even when the plans are identical.
// The within-pair order also flips every iteration: on large result
// sets the follower systematically absorbs the GC triggered by the
// leader's freshly allocated rows, so a fixed order biases one side.
func timeMinPair(db *engine.Database, query string, a, b plan.Options, repeats int) (time.Duration, time.Duration, error) {
	if repeats < 6 {
		repeats = 6
	}
	minA, minB := time.Duration(0), time.Duration(0)
	for i := 0; i < repeats; i++ {
		order := []bool{true, false} // true = config a
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, isA := range order {
			opts := b
			if isA {
				opts = a
			}
			db.SetPlannerOptions(opts)
			start := time.Now()
			if _, err := db.Query(query); err != nil {
				return 0, 0, err
			}
			d := time.Since(start)
			if isA {
				if minA == 0 || d < minA {
					minA = d
				}
			} else if minB == 0 || d < minB {
				minB = d
			}
		}
	}
	return minA, minB, nil
}

// RunOptimizer measures the cost-based planner against the greedy
// baseline (join order) and the serial baseline (adaptive DOP gate) on
// a synthetic store of n base rows. Zero arguments select the defaults
// (4000 rows, DOP 4).
func RunOptimizer(n, dop, repeats int) ([]OptimizerMeasurement, error) {
	if n <= 0 {
		n = 4000
	}
	if dop < 2 {
		dop = 4
	}
	db, err := buildOptimizerDB(n)
	if err != nil {
		return nil, fmt.Errorf("bench: optimizer fixture: %w", err)
	}
	var out []OptimizerMeasurement

	// Join order: greedy (DisableCostModel) vs the DP enumeration.
	joinQueries := []string{
		`SELECT COUNT(*) FROM a, b, c WHERE a_ab = b_ab AND b_bc = c_bc`,
		fmt.Sprintf(`SELECT COUNT(*) FROM a, b, c WHERE a_ab = b_ab AND b_bc = c_bc AND c_id < %d`, n/2),
	}
	greedyOpts := plan.Options{DOP: 1, DisableCostModel: true}
	costOpts := plan.Options{DOP: 1}
	for _, q := range joinQueries {
		db.SetPlannerOptions(greedyOpts)
		ref, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizer greedy: %w", err)
		}
		exGreedy, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		tGreedy, err := timeMinQuery(db, q, repeats)
		if err != nil {
			return nil, err
		}
		db.SetPlannerOptions(costOpts)
		got, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizer dp: %w", err)
		}
		exCost, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		tCost, err := timeMinQuery(db, q, repeats)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if tCost > 0 {
			speedup = float64(tGreedy) / float64(tCost)
		}
		out = append(out, OptimizerMeasurement{
			Kind:        "joinorder",
			Query:       q,
			BaselineMs:  float64(tGreedy.Microseconds()) / 1e3,
			CostMs:      float64(tCost.Microseconds()) / 1e3,
			Speedup:     speedup,
			Rows:        len(got.Rows),
			Identical:   reflect.DeepEqual(ref.Rows, got.Rows),
			PlansDiffer: exGreedy != exCost,
		})
	}

	// Adaptive DOP gate: the same query at DOP 1 and DOP N with the cost
	// gate deciding whether the scan fragments. The wide-table LIKE scans
	// pay real per-row predicate work and cross the gate whenever enough
	// processors exist; the mid-size scan and the point lookup fall under
	// it and stay serial, so their parallel "plan" is the serial plan and
	// costs nothing. On hosts with fewer processors than DOP the gate
	// caps its modeled speedup at the real CPU count and keeps even the
	// expensive scans serial — the DOP-N timing then matches DOP 1
	// instead of regressing, and WouldParallel preserves the
	// machine-independent decision.
	gateQueries := []string{
		`SELECT COUNT(*) FROM wide WHERE w_s LIKE '%payload-7%'`,
		fmt.Sprintf(`SELECT w_grp, COUNT(*) FROM wide WHERE w_s LIKE '%%a%%' AND w_val > %d GROUP BY w_grp`, 4*n),
		`SELECT COUNT(*) FROM mid WHERE m_val > 700`,
		`SELECT a_id, a_ab FROM a WHERE a_id = 3`,
	}
	// Gate cells compare runs of (often byte-identical) plans, so any
	// measured gap is scheduler and allocator noise; extra repeats under
	// the min statistic squeeze that noise out.
	gateRepeats := 3 * repeats
	if gateRepeats < 9 {
		gateRepeats = 9
	}
	for _, q := range gateQueries {
		serialOpts := plan.Options{DOP: 1}
		parOpts := plan.Options{DOP: dop}
		db.SetPlannerOptions(serialOpts)
		ref, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizer gate dop=1: %w", err)
		}
		db.SetPlannerOptions(parOpts)
		got, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizer gate dop=%d: %w", dop, err)
		}
		ex, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		db.SetPlannerOptions(serialOpts)
		exSerial, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		t1, tn, err := timeMinPair(db, q, serialOpts, parOpts, gateRepeats)
		if err != nil {
			return nil, err
		}
		if ex == exSerial {
			// Gate refused: both cells timed the same serial executable
			// (planner options are consumed entirely at plan time), so
			// pool the samples instead of letting two noisy estimates of
			// one quantity drift the ratio away from 1.0.
			if tn < t1 {
				t1 = tn
			} else {
				tn = t1
			}
		}
		db.SetPlannerOptions(plan.Options{DOP: dop, CPUs: dop})
		exAssumed, err := db.Explain(q)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if tn > 0 {
			speedup = float64(t1) / float64(tn)
		}
		out = append(out, OptimizerMeasurement{
			Kind:          "gate",
			Query:         q,
			BaselineMs:    float64(t1.Microseconds()) / 1e3,
			CostMs:        float64(tn.Microseconds()) / 1e3,
			Speedup:       speedup,
			Rows:          len(got.Rows),
			Identical:     reflect.DeepEqual(ref.Rows, got.Rows),
			DOP:           dop,
			Parallel:      strings.Contains(ex, "Gather"),
			WouldParallel: strings.Contains(exAssumed, "Gather"),
		})
	}
	db.SetPlannerOptions(plan.Options{DOP: 1})
	return out, nil
}

// OptimizerTable renders the measurements as the repro CLI report.
func OptimizerTable(ms []OptimizerMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Cost-based optimizer: greedy vs DP join order, adaptive DOP gate\n")
	fmt.Fprintf(&sb, "%-10s %-58s %11s %9s %8s %6s %7s %9s %6s\n",
		"kind", "query", "baseline_ms", "cost_ms", "speedup", "ident", "differ", "parallel", "would")
	for _, m := range ms {
		q := m.Query
		if len(q) > 56 {
			q = q[:56] + "…"
		}
		fmt.Fprintf(&sb, "%-10s %-58s %11.2f %9.2f %8.2f %6t %7t %9t %6t\n",
			m.Kind, q, m.BaselineMs, m.CostMs, m.Speedup, m.Identical, m.PlansDiffer, m.Parallel, m.WouldParallel)
	}
	return sb.String()
}

// WriteOptimizerJSON writes the measurements as a JSON array to path
// (conventionally BENCH_optimizer.json).
func WriteOptimizerJSON(path string, ms []OptimizerMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
