package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/plan"
)

// TestParallelDeterminism runs every workload query of both corpora,
// under both mappings, at DOP 1 and DOP 4, and requires identical rows
// in identical order — the end-to-end guarantee behind the
// order-preserving exchange.
func TestParallelDeterminism(t *testing.T) {
	workloads := []struct {
		name    string
		ds      Dataset
		queries []Query
	}{
		{"shakespeare", ShakespeareDataset(3), ShakespeareQueries()},
		{"sigmod", SigmodDataset(60), SigmodQueries()},
	}
	for _, w := range workloads {
		for _, alg := range []core.Algorithm{core.Hybrid, core.XORator} {
			st, _, err := BuildStore(w.ds, alg, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, alg, err)
			}
			for _, q := range w.queries {
				text := q.Hybrid
				if alg == core.XORator {
					text = q.XORator
				}
				st.DB.SetPlannerOptions(plan.Options{DOP: 1})
				want, err := st.Query(text)
				if err != nil {
					t.Fatalf("%s/%s/%s serial: %v", w.name, alg, q.ID, err)
				}
				st.DB.SetPlannerOptions(plan.Options{DOP: 4, MorselPages: 1, CPUs: 4})
				got, err := st.Query(text)
				if err != nil {
					t.Fatalf("%s/%s/%s dop=4: %v", w.name, alg, q.ID, err)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Errorf("%s/%s/%s: dop=4 rows (%d) differ from serial (%d)",
						w.name, alg, q.ID, len(got.Rows), len(want.Rows))
				}
			}
		}
	}
}

func TestRunParallelReportsSpeedupAndJSON(t *testing.T) {
	st, _, err := BuildStore(ShakespeareDataset(3), core.XORator, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunParallel(st, ShakespeareQueries(), "xorator", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(ShakespeareQueries()) {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if !m.Identical {
			t.Errorf("%s: parallel result differed from serial", m.Query)
		}
		if m.Dop1Ms <= 0 || m.DopNMs <= 0 {
			t.Errorf("%s: non-positive timings %v/%v", m.Query, m.Dop1Ms, m.DopNMs)
		}
		// The CPU-aware gate refuses to fragment when the host cannot
		// run two workers at once, so a single-CPU machine must plan
		// every DOP-N cell exactly like DOP 1.
		if runtime.GOMAXPROCS(0) == 1 && !m.SamePlan {
			t.Errorf("%s: DOP-%d plan differs from serial on a single-CPU host", m.Query, m.DOP)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	if err := WriteParallelJSON(path, ms); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []ParallelMeasurement
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, ms) {
		t.Error("JSON round-trip altered measurements")
	}
	table := ParallelTable(ms)
	if !strings.Contains(table, "parallel_speedup") {
		t.Errorf("table missing parallel_speedup column:\n%s", table)
	}
}
