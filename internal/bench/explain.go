package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/plan"
)

// planReport renders each query's physical plan followed by the
// predicate classification — which conjuncts were pushed into scan
// cursors, answered by an XADT fragment index, fused into a
// table-function apply, or left as residual filters.
func planReport(st *core.Store, queries []xadtQuery) (string, error) {
	var sb strings.Builder
	for _, q := range queries {
		op, err := st.DB.Plan(q.text)
		if err != nil {
			return "", fmt.Errorf("%s: %w", q.id, err)
		}
		fmt.Fprintf(&sb, "-- %s\n", q.id)
		sb.WriteString(plan.Explain(op))
		sb.WriteString(plan.PredicateSummary(op))
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// XadtPlanReport builds the xadt-benchmark stores and reports every
// benchmark query's plan and predicate classification.
func XadtPlanReport(shake, sigmod Dataset) (string, error) {
	return plansFor(shake, sigmod, xadtShakespeareQueries(), xadtSigmodQueries())
}

// IndexPlanReport does the same for the index-benchmark query set.
func IndexPlanReport(shake, sigmod Dataset) (string, error) {
	return plansFor(shake, sigmod, indexShakespeareQueries(), indexSigmodQueries())
}

func plansFor(shake, sigmod Dataset, shakeQs, sigmodQs []xadtQuery) (string, error) {
	var sb strings.Builder
	groups := []struct {
		ds      Dataset
		queries []xadtQuery
	}{
		{shake, shakeQs},
		{sigmod, sigmodQs},
	}
	for _, g := range groups {
		st, err := buildXadtStore(g.ds, core.Config{})
		if err != nil {
			return "", fmt.Errorf("bench: %s plan report: %w", g.ds.Name, err)
		}
		fmt.Fprintf(&sb, "== %s plans ==\n", g.ds.Name)
		rep, err := planReport(st, g.queries)
		if err != nil {
			return "", err
		}
		sb.WriteString(rep)
	}
	return sb.String(), nil
}
