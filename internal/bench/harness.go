package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datagen"
	"repro/internal/xmltree"
)

// Dataset names a corpus and its DTD.
type Dataset struct {
	Name string
	DTD  string
	Docs []*xmltree.Document
}

// ShakespeareDataset builds the §4.3 corpus. plays <= 0 uses the paper
// scale (37 plays, ~7.5 MB).
func ShakespeareDataset(plays int) Dataset {
	cfg := datagen.DefaultPlayConfig()
	if plays > 0 {
		cfg.Plays = plays
	}
	return Dataset{
		Name: "shakespeare",
		DTD:  corpus.ShakespeareDTD,
		Docs: datagen.GeneratePlays(cfg),
	}
}

// SigmodDataset builds the §4.4 corpus. docs <= 0 uses the paper scale
// (3000 documents, ~12 MB).
func SigmodDataset(docs int) Dataset {
	cfg := datagen.DefaultSigmodConfig()
	if docs > 0 {
		cfg.Documents = docs
	}
	return Dataset{
		Name: "sigmod",
		DTD:  corpus.SigmodDTD,
		Docs: datagen.GenerateSigmod(cfg),
	}
}

// LoadResult describes one load of a dataset into a store.
type LoadResult struct {
	Stats    core.Stats
	LoadTime time.Duration
}

// BuildStore loads the dataset scale times into a fresh store under the
// given algorithm, then builds the workload indexes and refreshes
// statistics — the paper's methodology (Index-Wizard indexes + runstats
// before each measurement). LoadTime covers document shredding only,
// matching the paper's loading-time metric.
func BuildStore(ds Dataset, alg core.Algorithm, scale int) (*core.Store, LoadResult, error) {
	st, err := core.NewStore(ds.DTD, core.Config{Algorithm: alg})
	if err != nil {
		return nil, LoadResult{}, err
	}
	start := time.Now()
	for i := 0; i < scale; i++ {
		if err := st.Load(ds.Docs); err != nil {
			return nil, LoadResult{}, err
		}
	}
	loadTime := time.Since(start)
	if err := st.CreateDefaultIndexes(); err != nil {
		return nil, LoadResult{}, err
	}
	if err := st.RunStats(); err != nil {
		return nil, LoadResult{}, err
	}
	return st, LoadResult{Stats: st.Stats(), LoadTime: loadTime}, nil
}

// Measurement is one timed query under both mappings.
type Measurement struct {
	ID          string
	HybridTime  time.Duration
	XoratorTime time.Duration
	HybridRows  int
	XoratorRows int
	// Ratio is HybridTime / XoratorTime: above 1 means XORator wins,
	// matching the y-axis of Figures 11 and 13.
	Ratio float64
}

// timeQuery runs a query repeats times and returns the trimmed-mean
// duration (drop the fastest and slowest run — the paper averages the
// middle three of five) along with the row count.
func timeQuery(st *core.Store, query string, repeats int) (time.Duration, int, error) {
	if repeats < 3 {
		repeats = 3
	}
	times := make([]time.Duration, 0, repeats)
	rows := 0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := st.Query(query)
		if err != nil {
			return 0, 0, err
		}
		times = append(times, time.Since(start))
		rows = len(res.Rows)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	trimmed := times[1 : len(times)-1]
	var sum time.Duration
	for _, d := range trimmed {
		sum += d
	}
	return sum / time.Duration(len(trimmed)), rows, nil
}

// RunQueries measures every query against both stores.
func RunQueries(hybrid, xorator *core.Store, queries []Query, repeats int) ([]Measurement, error) {
	out := make([]Measurement, 0, len(queries))
	for _, q := range queries {
		ht, hrows, err := timeQuery(hybrid, q.Hybrid, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s hybrid: %w", q.ID, err)
		}
		xt, xrows, err := timeQuery(xorator, q.XORator, repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: %s xorator: %w", q.ID, err)
		}
		out = append(out, Measurement{
			ID:          q.ID,
			HybridTime:  ht,
			XoratorTime: xt,
			HybridRows:  hrows,
			XoratorRows: xrows,
			Ratio:       ratio(ht, xt),
		})
	}
	return out, nil
}

func ratio(hybrid, xorator time.Duration) float64 {
	if xorator <= 0 {
		return 0
	}
	return float64(hybrid) / float64(xorator)
}

// ScalePoint is one DSxN column of Figures 11 and 13.
type ScalePoint struct {
	Scale        int // 1, 2, 4, 8
	Measurements []Measurement
	HybridLoad   LoadResult
	XoratorLoad  LoadResult
}

// LoadRatio returns HybridLoad / XoratorLoad, the figures' rightmost
// group.
func (p ScalePoint) LoadRatio() float64 {
	return ratio(p.HybridLoad.LoadTime, p.XoratorLoad.LoadTime)
}

// RunScaled executes the full figure experiment: for each scale point it
// builds both stores, measures loading, and runs the workload.
func RunScaled(ds Dataset, queries []Query, scales []int, repeats int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, scale := range scales {
		hybrid, hload, err := BuildStore(ds, core.Hybrid, scale)
		if err != nil {
			return nil, err
		}
		xorator, xload, err := BuildStore(ds, core.XORator, scale)
		if err != nil {
			return nil, err
		}
		ms, err := RunQueries(hybrid, xorator, queries, repeats)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Scale:        scale,
			Measurements: ms,
			HybridLoad:   hload,
			XoratorLoad:  xload,
		})
	}
	return out, nil
}

// UDFMeasurement is one Figure 14 comparison.
type UDFMeasurement struct {
	ID          string
	BuiltinTime time.Duration
	UDFTime     time.Duration
	// Overhead is UDFTime/BuiltinTime - 1; the paper reports ~0.4.
	Overhead float64
	Rows     int
}

// RunUDFOverhead measures the QT pair against a Hybrid store (the
// speaker table). Builtin and UDF runs are interleaved and garbage is
// collected between runs so cache and allocator phase effects hit both
// variants equally.
func RunUDFOverhead(hybrid *core.Store, repeats int) ([]UDFMeasurement, error) {
	if repeats < 3 {
		repeats = 3
	}
	var out []UDFMeasurement
	for _, q := range UDFQueries() {
		builtinTimes := make([]time.Duration, 0, repeats)
		udfTimes := make([]time.Duration, 0, repeats)
		rows := 0
		for i := 0; i < repeats; i++ {
			runtime.GC()
			start := time.Now()
			res, err := hybrid.Query(q.Builtin)
			if err != nil {
				return nil, fmt.Errorf("bench: %s builtin: %w", q.ID, err)
			}
			builtinTimes = append(builtinTimes, time.Since(start))
			rows = len(res.Rows)

			runtime.GC()
			start = time.Now()
			if _, err := hybrid.Query(q.UDF); err != nil {
				return nil, fmt.Errorf("bench: %s udf: %w", q.ID, err)
			}
			udfTimes = append(udfTimes, time.Since(start))
		}
		bt := trimmedMean(builtinTimes)
		ut := trimmedMean(udfTimes)
		overhead := 0.0
		if bt > 0 {
			overhead = float64(ut)/float64(bt) - 1
		}
		out = append(out, UDFMeasurement{
			ID: q.ID, BuiltinTime: bt, UDFTime: ut, Overhead: overhead, Rows: rows,
		})
	}
	return out, nil
}

// trimmedMean drops the fastest and slowest run and averages the rest.
func trimmedMean(times []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	trimmed := sorted
	if len(sorted) > 2 {
		trimmed = sorted[1 : len(sorted)-1]
	}
	var sum time.Duration
	for _, d := range trimmed {
		sum += d
	}
	return sum / time.Duration(len(trimmed))
}
