package bench

import (
	"testing"

	"repro/internal/engine/vec"
)

// TestVectorSmoke runs the vector benchmark at a reduced scale, checking
// that every cell produced identical rows on both engines and that no
// pooled batches leak across the whole run (serial and parallel, row and
// vectorized). Wired into the CI benchsmoke target.
func TestVectorSmoke(t *testing.T) {
	base := vec.Outstanding()
	ms, err := RunVector(4000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range ms {
		if !m.Identical {
			t.Errorf("%s dop=%d: vectorized rows differ from row engine", m.Op, m.DOP)
		}
		if m.OutRows == 0 {
			t.Errorf("%s dop=%d: no output rows", m.Op, m.DOP)
		}
	}
	if got := vec.Outstanding(); got != base {
		t.Fatalf("leaked %d pooled batches across benchmark run", got-base)
	}
}
