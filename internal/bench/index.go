// XADT index benchmark: keyword/point selection queries timed with the
// secondary fragment indexes (structural path + inverted keyword) on,
// against the PR-2 fast-path scan baseline (indexes off, header
// fast-reject + decode cache on) and the seed scan baseline (indexes and
// fast path both off). Each cell runs at DOP 1 and DOP N and every cell
// must return rows byte-identical to the indexed plan. Emitted as a
// report table and machine-readable BENCH_index.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/plan"
	"repro/internal/xadt"
)

// IndexMeasurement is one query measured indexed vs fast-scan vs
// seed-scan.
type IndexMeasurement struct {
	Query          string  `json:"query"`
	Dataset        string  `json:"dataset"`
	Format         string  `json:"format"`
	IdxDop1Ms      float64 `json:"indexed_dop1_ms"`
	FastScanDop1Ms float64 `json:"fastscan_dop1_ms"`
	SeedScanDop1Ms float64 `json:"seedscan_dop1_ms"`
	SpeedupFast1   float64 `json:"speedup_vs_fastscan_dop1"`
	SpeedupSeed1   float64 `json:"speedup_vs_seedscan_dop1"`
	IdxDopNMs      float64 `json:"indexed_dopn_ms"`
	FastScanDopNMs float64 `json:"fastscan_dopn_ms"`
	SpeedupFastN   float64 `json:"speedup_vs_fastscan_dopn"`
	DOP            int     `json:"dop"`
	Rows           int     `json:"rows"`
	Identical      bool    `json:"identical"`
	IndexedPlan    bool    `json:"indexed_plan"`
}

// indexShakespeareQueries are the Shakespeare selections whose
// findKeyInElm(col, 'Elm', 'key') = 1 conjuncts the index rewrite
// answers: element-presence probes (QS2), keyword probes (QS3), a point
// speaker selection (QS4), and a two-conjunct intersection (QS5).
func indexShakespeareQueries() []xadtQuery {
	qs := map[string]string{}
	for _, q := range ShakespeareQueries() {
		qs[q.ID] = q.XORator
	}
	return []xadtQuery{
		{"QS2", qs["QS2"]},
		{"QS3", qs["QS3"]},
		{"QS4", qs["QS4"]},
		{"QS5", qs["QS5"]},
	}
}

// indexSigmodQueries are the SIGMOD-side indexable selections. QG3/QG5
// apply findKeyInElm to table-function output, which no stored index
// covers, so only the stored-column probe QG1 rides here.
func indexSigmodQueries() []xadtQuery {
	qs := map[string]string{}
	for _, q := range SigmodQueries() {
		qs[q.ID] = q.XORator
	}
	return []xadtQuery{
		{"QG1", qs["QG1"]},
	}
}

// RunIndex measures the fragment indexes on both datasets. The
// Shakespeare store is forced-Compressed so the scan baselines pay a
// decode per fragment — the paper's worst case and the index's best.
func RunIndex(shake, sigmod Dataset, dop, repeats int) ([]IndexMeasurement, error) {
	if dop < 2 {
		dop = 2
	}
	comp := xadt.Compressed
	shakeCfg := core.Config{ForceFormat: &comp}
	var out []IndexMeasurement

	groups := []struct {
		ds      Dataset
		cfg     core.Config
		queries []xadtQuery
	}{
		{shake, shakeCfg, indexShakespeareQueries()},
		{sigmod, core.Config{}, indexSigmodQueries()},
	}
	for _, g := range groups {
		st, err := buildXadtStore(g.ds, g.cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: index %s store: %w", g.ds.Name, err)
		}
		for _, q := range g.queries {
			m, err := measureIndex(st, q, g.ds.Name, dop, repeats)
			if err != nil {
				return nil, fmt.Errorf("bench: index %s: %w", q.id, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// measureIndex runs one query through every mode × DOP cell on one
// store; modes differ only in planner options and the fast-path toggle.
func measureIndex(st *core.Store, q xadtQuery, dataset string, dop, repeats int) (IndexMeasurement, error) {
	serial := plan.Options{DOP: 1}
	var zero IndexMeasurement

	type cell struct {
		fast bool
		opts plan.Options
	}
	cells := []cell{
		{true, plan.Options{DOP: 1}},                                 // indexed, DOP 1
		{true, plan.Options{DOP: 1, DisableXADTIndexes: true}},       // fast scan, DOP 1
		{false, plan.Options{DOP: 1, DisableXADTIndexes: true}},      // seed scan, DOP 1
		{true, plan.Options{DOP: dop}},                               // indexed, DOP N
		{true, plan.Options{DOP: dop, DisableXADTIndexes: true}},     // fast scan, DOP N
	}
	times := make([]float64, len(cells))
	rowData := make([]interface{}, len(cells))
	nrows := 0
	for i, c := range cells {
		st.DB.SetXADTFastPath(c.fast)
		st.DB.SetPlannerOptions(c.opts)
		res, err := st.Query(q.text)
		if err != nil {
			return zero, err
		}
		t, _, err := timeQuery(st, q.text, repeats)
		if err != nil {
			return zero, err
		}
		times[i] = float64(t.Microseconds()) / 1e3
		rowData[i] = res.Rows
		if i == 0 {
			nrows = len(res.Rows)
		}
	}
	// Confirm the indexed cells actually planned an IndexedFragScan.
	st.DB.SetPlannerOptions(serial)
	op, err := st.DB.Plan(q.text)
	if err != nil {
		return zero, err
	}
	indexedPlan := strings.Contains(plan.Explain(op), "[idx")
	st.DB.SetXADTFastPath(true)

	identical := true
	for i := 1; i < len(rowData); i++ {
		if !reflect.DeepEqual(rowData[0], rowData[i]) {
			identical = false
		}
	}
	speedup := func(base, idx float64) float64 {
		if idx <= 0 {
			return 0
		}
		return base / idx
	}
	return IndexMeasurement{
		Query:          q.id,
		Dataset:        dataset,
		Format:         st.Format.String(),
		IdxDop1Ms:      times[0],
		FastScanDop1Ms: times[1],
		SeedScanDop1Ms: times[2],
		SpeedupFast1:   speedup(times[1], times[0]),
		SpeedupSeed1:   speedup(times[2], times[0]),
		IdxDopNMs:      times[3],
		FastScanDopNMs: times[4],
		SpeedupFastN:   speedup(times[4], times[3]),
		DOP:            dop,
		Rows:           nrows,
		Identical:      identical,
		IndexedPlan:    indexedPlan,
	}, nil
}

// IndexTable renders the measurements as the repro CLI report.
func IndexTable(ms []IndexMeasurement) string {
	var sb strings.Builder
	sb.WriteString("XADT fragment indexes: path + keyword postings vs fast-path scan vs seed scan\n")
	fmt.Fprintf(&sb, "%-6s %-12s %-11s %8s %8s %8s %8s %8s %8s %8s %6s %5s %4s\n",
		"query", "dataset", "format", "idx1_ms", "scan1_ms", "seed1_ms", "xscan", "xseed",
		"idxN_ms", "scanN_ms", "rows", "ident", "plan")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-6s %-12s %-11s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %6d %5t %4t\n",
			m.Query, m.Dataset, m.Format, m.IdxDop1Ms, m.FastScanDop1Ms, m.SeedScanDop1Ms,
			m.SpeedupFast1, m.SpeedupSeed1, m.IdxDopNMs, m.FastScanDopNMs,
			m.Rows, m.Identical, m.IndexedPlan)
	}
	return sb.String()
}

// WriteIndexJSON writes the measurements as a JSON array to path
// (conventionally BENCH_index.json).
func WriteIndexJSON(path string, ms []IndexMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
