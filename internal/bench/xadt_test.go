package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestXadtSmoke runs the full xadt experiment at reduced scale — this is
// the `make ci` benchsmoke entry point, run under -race, so it exercises
// the pooled decode caches and the fast-path toggle concurrently with
// parallel morsel scans.
func TestXadtSmoke(t *testing.T) {
	ms, err := RunXadt(ShakespeareDataset(3), SigmodDataset(60), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	for _, m := range ms {
		if !m.IdenticalDop1 {
			t.Errorf("%s: fast path rows differ from baseline at DOP 1", m.Query)
		}
		if !m.IdenticalDopN {
			t.Errorf("%s: rows differ at DOP %d", m.Query, m.DOP)
		}
		if !m.LegacyOK {
			t.Errorf("%s: headerless legacy store rows differ", m.Query)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_xadt.json")
	if err := WriteXadtJSON(path, ms); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("json not written: %v", err)
	}
	if tbl := XadtTable(ms); tbl == "" {
		t.Fatal("empty table")
	}
}
