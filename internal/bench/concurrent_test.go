package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMVCCSmoke runs the concurrency benchmark at reduced scale: the
// three reader cells (0/1/4 writers) and three commit-latency cells
// (no-WAL/batch/always) must complete with plausible numbers, every
// writer commit must be conflict-free or retried, and
// BENCH_concurrent.json must parse. CI runs this under the race
// detector, so the reader/writer cells double as a concurrency stress
// on the session machinery.
func TestMVCCSmoke(t *testing.T) {
	ds := ShakespeareDataset(2)
	dir := t.TempDir()
	ms, err := RunConcurrent(ds, dir, 120, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 {
		t.Fatalf("cells = %d, want 6", len(ms))
	}
	wantConfigs := []string{"read-0w", "read-1w", "read-4w", "commit-none", "commit-batch", "commit-always"}
	for i, m := range ms {
		if m.Config != wantConfigs[i] {
			t.Errorf("cell %d = %s, want %s", i, m.Config, wantConfigs[i])
		}
	}
	for _, m := range ms[:3] {
		if m.Reads == 0 || m.ReadsPerSec <= 0 {
			t.Errorf("cell %s: implausible reader measurement %+v", m.Config, m)
		}
		if m.Writers > 0 && m.Commits == 0 {
			t.Errorf("cell %s: writers committed nothing", m.Config)
		}
	}
	for _, m := range ms[3:] {
		if m.Commits == 0 || m.CommitMsAvg <= 0 || m.CommitsPerSec <= 0 {
			t.Errorf("cell %s: implausible commit measurement %+v", m.Config, m)
		}
	}

	out := filepath.Join(dir, "BENCH_concurrent.json")
	if err := WriteConcurrentJSON(out, ms); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []ConcurrentMeasurement
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(parsed) != len(ms) {
		t.Fatalf("artifact rows = %d, want %d", len(parsed), len(ms))
	}
	if ConcurrentTable(ms) == "" {
		t.Fatal("empty table rendering")
	}
}
