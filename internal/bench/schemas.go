package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dtd"
	"repro/internal/mapping"
)

// SchemasReport renders Figures 5 & 6 of the paper: the relational
// schemas the Hybrid and XORator mappings produce for the Plays DTD.
// The repro CLI prints it for -exp schemas; the golden test pins it.
func SchemasReport() (string, error) {
	var sb strings.Builder
	for _, alg := range []core.Algorithm{core.Hybrid, core.XORator} {
		d, err := dtd.Parse(corpus.PlaysDTD)
		if err != nil {
			return "", err
		}
		s := dtd.Simplify(d)
		var schema *mapping.Schema
		if alg == core.Hybrid {
			schema, err = mapping.Hybrid(s)
		} else {
			schema, err = mapping.XORator(s)
		}
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "-- %s mapping of the Plays DTD (%d tables)\n%s\n",
			alg, len(schema.Relations), schema)
	}
	return sb.String(), nil
}
