package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDurabilitySmoke runs the WAL-overhead benchmark at reduced scale:
// all four durability modes must complete, load the same rows, and
// produce a parseable BENCH_durability.json. CI runs this under the race
// detector as the durability counterpart of the xadt smoke.
func TestDurabilitySmoke(t *testing.T) {
	ds := ShakespeareDataset(2)
	dir := t.TempDir()
	ms, err := RunDurability(ds, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("modes = %d, want 4", len(ms))
	}
	wantModes := []string{"nowal", "off", "batch", "always"}
	for i, m := range ms {
		if m.Mode != wantModes[i] {
			t.Errorf("mode %d = %s, want %s", i, m.Mode, wantModes[i])
		}
		if m.Docs != len(ds.Docs) || m.Rows == 0 || m.DocsPerSec <= 0 {
			t.Errorf("mode %s: implausible measurement %+v", m.Mode, m)
		}
		if m.Rows != ms[0].Rows {
			t.Errorf("mode %s loaded %d rows, baseline loaded %d", m.Mode, m.Rows, ms[0].Rows)
		}
	}
	if ms[0].OverheadPct != 0 {
		t.Errorf("baseline overhead = %f, want 0", ms[0].OverheadPct)
	}

	out := filepath.Join(dir, "BENCH_durability.json")
	if err := WriteDurabilityJSON(out, ms); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []DurabilityMeasurement
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(parsed) != len(ms) {
		t.Fatalf("artifact rows = %d, want %d", len(parsed), len(ms))
	}
	if DurabilityTable(ms) == "" {
		t.Fatal("empty table rendering")
	}
}
