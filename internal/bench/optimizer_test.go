package bench

import "testing"

// TestOptimizerSmoke runs the optimizer benchmark at a reduced scale,
// checking that every cell returned identical rows under both planners,
// that the DP join order actually produced a different physical plan
// than the greedy baseline on the chain join (the speedup itself is
// timing-dependent and only asserted by the full benchmark run), and
// that the adaptive gate splits the gate queries the intended way under
// an assumed DOP-processor machine: expensive per-row scans cross,
// small scans stay serial. Wired into the CI benchsmoke target under
// -race.
func TestOptimizerSmoke(t *testing.T) {
	ms, err := RunOptimizer(1000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	plansDiffer := false
	crossed, refused := false, false
	for _, m := range ms {
		if !m.Identical {
			t.Errorf("%s %q: cost-based rows differ from baseline", m.Kind, m.Query)
		}
		if m.Kind == "joinorder" && m.PlansDiffer {
			plansDiffer = true
		}
		if m.Kind == "gate" {
			if m.WouldParallel {
				crossed = true
			} else {
				refused = true
			}
			if m.Parallel && !m.WouldParallel {
				t.Errorf("gate %q: parallel on this host but not under the assumed DOP CPUs", m.Query)
			}
		}
	}
	if !plansDiffer {
		t.Error("DP join order never diverged from the greedy baseline")
	}
	if !crossed {
		t.Error("no gate query would cross the gate given DOP processors")
	}
	if !refused {
		t.Error("no gate query stayed serial: the gate is not gating")
	}
}
