package bench

import (
	"fmt"
	"strings"
)

// SizeTable renders the Table 1 / Table 2 comparison from the two load
// results.
func SizeTable(title string, hybrid, xorator LoadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-24s %12s %12s\n", "", "Hybrid", "XORator")
	fmt.Fprintf(&sb, "%-24s %12d %12d\n", "Number of tables",
		hybrid.Stats.Tables, xorator.Stats.Tables)
	fmt.Fprintf(&sb, "%-24s %12.1f %12.1f\n", "Database size (MB)",
		mb(hybrid.Stats.DataBytes), mb(xorator.Stats.DataBytes))
	fmt.Fprintf(&sb, "%-24s %12.1f %12.1f\n", "Index size (MB)",
		mb(hybrid.Stats.IndexBytes), mb(xorator.Stats.IndexBytes))
	fmt.Fprintf(&sb, "%-24s %12s %12s\n", "XADT storage format",
		"-", xorator.Stats.Format.String())
	fmt.Fprintf(&sb, "%-24s %12.2f %12.2f\n", "Loading time (s)",
		hybrid.LoadTime.Seconds(), xorator.LoadTime.Seconds())
	return sb.String()
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }

// FigureTable renders a Figure 11 / Figure 13 ratio matrix: one row per
// query plus the loading-time row, one column per scale point. Values are
// Hybrid/XORator time ratios (log-scale in the paper; raw ratios here).
func FigureTable(title string, points []ScalePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\nHybrid/XORator response-time ratios (>1 means XORator is faster)\n", title)
	fmt.Fprintf(&sb, "%-10s", "query")
	for _, p := range points {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("DSx%d", p.Scale))
	}
	sb.WriteByte('\n')
	if len(points) == 0 {
		return sb.String()
	}
	for qi := range points[0].Measurements {
		fmt.Fprintf(&sb, "%-10s", points[0].Measurements[qi].ID)
		for _, p := range points {
			fmt.Fprintf(&sb, " %9.2f", p.Measurements[qi].Ratio)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-10s", "loading")
	for _, p := range points {
		fmt.Fprintf(&sb, " %9.2f", p.LoadRatio())
	}
	sb.WriteByte('\n')
	return sb.String()
}

// DetailTable renders absolute times and row counts for one scale point,
// for diagnosis beyond the paper's ratio plots.
func DetailTable(p ScalePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DSx%d absolute times\n", p.Scale)
	fmt.Fprintf(&sb, "%-8s %12s %12s %8s %10s %10s\n",
		"query", "hybrid", "xorator", "ratio", "h_rows", "x_rows")
	for _, m := range p.Measurements {
		fmt.Fprintf(&sb, "%-8s %12s %12s %8.2f %10d %10d\n",
			m.ID, m.HybridTime.Round(10e3), m.XoratorTime.Round(10e3),
			m.Ratio, m.HybridRows, m.XoratorRows)
	}
	fmt.Fprintf(&sb, "%-8s %12s %12s %8.2f\n", "loading",
		p.HybridLoad.LoadTime.Round(10e6), p.XoratorLoad.LoadTime.Round(10e6),
		p.LoadRatio())
	return sb.String()
}

// UDFTable renders Figure 14: built-in vs UDF response times.
func UDFTable(ms []UDFMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Figure 14: overhead in invoking UDFs\n")
	fmt.Fprintf(&sb, "%-6s %12s %12s %10s %10s\n", "query", "builtin", "UDF", "overhead", "rows")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-6s %12s %12s %9.0f%% %10d\n",
			m.ID, m.BuiltinTime.Round(10e3), m.UDFTime.Round(10e3), m.Overhead*100, m.Rows)
	}
	return sb.String()
}
