package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpillSmoke runs the spill experiment at reduced scale — a `make
// ci` benchsmoke entry point, run under -race. The budget is far below
// the table size, so all three blocking operators must actually spill
// (runs > 0), return exactly the unbounded rows at DOP 1 and DOP 4, and
// keep peak tracked memory within the budget plus one 8 KiB page.
func TestSpillSmoke(t *testing.T) {
	const budget = 64 << 10
	ms, err := RunSpill(4000, budget, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("expected 4 measurements, got %d", len(ms))
	}
	for _, m := range ms {
		if !m.Identical {
			t.Errorf("%s: bounded rows differ from unbounded at DOP 1", m.Op)
		}
		if !m.IdenticalDopN {
			t.Errorf("%s: bounded rows differ at DOP %d", m.Op, m.DOP)
		}
		if m.Op == "topn" {
			continue // no budget cell; plan shape is checked inside RunSpill
		}
		if m.SpillRuns == 0 {
			t.Errorf("%s: budget %d below input size but no spill runs written", m.Op, budget)
		}
		if m.PeakMemBytes > budget+8192 {
			t.Errorf("%s: peak tracked memory %d exceeds budget %d + one page", m.Op, m.PeakMemBytes, budget)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_spill.json")
	if err := WriteSpillJSON(path, ms); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || len(data) == 0 {
		t.Fatalf("json not written: %v", err)
	}
	if tbl := SpillTable(ms); tbl == "" {
		t.Fatal("empty table")
	}
}
