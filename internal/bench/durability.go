package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/wal"
	"repro/internal/xadt"
)

// DurabilityMeasurement is one row of the WAL overhead table: the corpus
// loaded once under one durability mode.
type DurabilityMeasurement struct {
	// Mode is "nowal" (no log), or the WAL sync policy: "off", "batch",
	// "always".
	Mode       string  `json:"mode"`
	Docs       int     `json:"docs"`
	Rows       int64   `json:"rows"`
	Millis     float64 `json:"ms"`
	DocsPerSec float64 `json:"docs_per_sec"`
	// OverheadPct is the slowdown relative to the nowal baseline of the
	// same run.
	OverheadPct float64 `json:"overhead_pct"`
}

// RunDurability measures document-load throughput under each durability
// mode — no WAL, then WAL at sync off / batch / always — on the real
// filesystem under dir, so sync costs are the operating system's. Each
// mode runs repeats times and keeps its fastest run (load benchmarks are
// noisy upward, never downward).
func RunDurability(ds Dataset, dir string, repeats int) ([]DurabilityMeasurement, error) {
	if repeats <= 0 {
		repeats = 3
	}
	modes := []struct {
		name   string
		logged bool
		sync   wal.SyncPolicy
	}{
		{"nowal", false, wal.SyncOff},
		{"off", true, wal.SyncOff},
		{"batch", true, wal.SyncBatch},
		{"always", true, wal.SyncAlways},
	}
	format := xadt.Raw
	out := make([]DurabilityMeasurement, 0, len(modes))
	for _, mode := range modes {
		var best time.Duration
		var rows int64
		for rep := 0; rep < repeats; rep++ {
			cfg := core.Config{Algorithm: core.XORator, ForceFormat: &format}
			walDir := filepath.Join(dir, fmt.Sprintf("wal-%s-%d", mode.name, rep))
			if mode.logged {
				cfg.Engine = engine.Config{WALDir: walDir, WALSync: mode.sync}
			}
			start := time.Now()
			st, err := core.NewStore(ds.DTD, cfg)
			if err != nil {
				return nil, fmt.Errorf("durability %s: %w", mode.name, err)
			}
			if err := st.Load(ds.Docs); err != nil {
				return nil, fmt.Errorf("durability %s: %w", mode.name, err)
			}
			if err := st.Close(); err != nil {
				return nil, fmt.Errorf("durability %s: %w", mode.name, err)
			}
			elapsed := time.Since(start)
			if best == 0 || elapsed < best {
				best = elapsed
			}
			rows = st.Stats().Rows
			if mode.logged {
				if err := os.RemoveAll(walDir); err != nil {
					return nil, err
				}
			}
		}
		ms := float64(best.Nanoseconds()) / 1e6
		out = append(out, DurabilityMeasurement{
			Mode:       mode.name,
			Docs:       len(ds.Docs),
			Rows:       rows,
			Millis:     ms,
			DocsPerSec: float64(len(ds.Docs)) / best.Seconds(),
		})
	}
	base := out[0].Millis
	for i := range out {
		out[i].OverheadPct = (out[i].Millis/base - 1) * 100
	}
	return out, nil
}

// DurabilityTable renders the measurements.
func DurabilityTable(ms []DurabilityMeasurement) string {
	var sb strings.Builder
	sb.WriteString("Durability: load throughput by WAL sync policy\n")
	fmt.Fprintf(&sb, "%-8s %6s %10s %10s %12s %10s\n",
		"mode", "docs", "rows", "load_ms", "docs_per_s", "overhead")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-8s %6d %10d %10.1f %12.1f %9.1f%%\n",
			m.Mode, m.Docs, m.Rows, m.Millis, m.DocsPerSec, m.OverheadPct)
	}
	return sb.String()
}

// WriteDurabilityJSON writes the measurements as a JSON array to path
// (the BENCH_durability.json artifact).
func WriteDurabilityJSON(path string, ms []DurabilityMeasurement) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
