package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	doc, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return doc
}

func TestParseSimpleElement(t *testing.T) {
	doc := mustParse(t, `<a>hello</a>`)
	if doc.Root.Name != "a" {
		t.Errorf("root name = %q, want a", doc.Root.Name)
	}
	if got := doc.Root.InnerText(); got != "hello" {
		t.Errorf("inner text = %q, want hello", got)
	}
}

func TestParseNestedElements(t *testing.T) {
	doc := mustParse(t, `<a><b><c>x</c></b><b>y</b></a>`)
	bs := doc.Root.ChildrenNamed("b")
	if len(bs) != 2 {
		t.Fatalf("got %d b children, want 2", len(bs))
	}
	if bs[0].FirstChildNamed("c") == nil {
		t.Error("first b should contain c")
	}
	if got := bs[1].InnerText(); got != "y" {
		t.Errorf("second b text = %q, want y", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<a x="1" y='two' z="a&amp;b"></a>`)
	for _, tc := range []struct{ name, want string }{
		{"x", "1"}, {"y", "two"}, {"z", "a&b"},
	} {
		got, ok := doc.Root.Attr(tc.name)
		if !ok || got != tc.want {
			t.Errorf("attr %s = %q,%v want %q", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := doc.Root.Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := mustParse(t, `<a><b/><c x="1"/></a>`)
	if len(doc.Root.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(doc.Root.Children))
	}
	if v, _ := doc.Root.Children[1].Attr("x"); v != "1" {
		t.Errorf("c@x = %q, want 1", v)
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>`)
	want := `<tag> & "q" 'a' AB`
	if got := doc.Root.InnerText(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<a><![CDATA[<not & parsed>]]></a>`)
	if got := doc.Root.InnerText(); got != "<not & parsed>" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- head --><a>x<!-- in -->y<?pi data?></a><!-- tail -->`)
	if got := doc.Root.InnerText(); got != "xy" {
		t.Errorf("text = %q, want xy", got)
	}
}

func TestParseDoctype(t *testing.T) {
	src := `<!DOCTYPE play [
<!ELEMENT play (act+)>
<!ELEMENT act (#PCDATA)>
]><play><act>one</act></play>`
	doc := mustParse(t, src)
	if doc.DoctypeName != "play" {
		t.Errorf("doctype name = %q, want play", doc.DoctypeName)
	}
	if !strings.Contains(doc.InternalSubset, "<!ELEMENT act (#PCDATA)>") {
		t.Errorf("internal subset missing element decl: %q", doc.InternalSubset)
	}
}

func TestParseDoctypeExternalID(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE html SYSTEM "http://example.com/x.dtd"><html></html>`)
	if doc.DoctypeName != "html" {
		t.Errorf("doctype name = %q", doc.DoctypeName)
	}
	if doc.InternalSubset != "" {
		t.Errorf("internal subset = %q, want empty", doc.InternalSubset)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                     // empty
		`<a>`,                  // unterminated
		`<a></b>`,              // mismatched
		`<a x=1></a>`,          // unquoted attr
		`<a x="1" x="2"></a>`,  // duplicate attr
		`<a>&unknown;</a>`,     // unknown entity
		`<a><![CDATA[x]]</a>`,  // bad cdata
		`<a></a><b></b>`,       // two roots
		`<a attr="x<y"></a>`,   // < in attribute
		`<a>&#xZZ;</a>`,        // bad char ref
		`<!DOCTYPE a [<x><a/>`, // unterminated internal subset
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("<a>\n<b>\n</c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestParseFragment(t *testing.T) {
	nodes, err := ParseFragment(`<s>a</s><s>b</s>text`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(nodes))
	}
	if nodes[0].Name != "s" || nodes[2].Text != "text" {
		t.Errorf("unexpected fragment nodes: %+v", nodes)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<a x="1&amp;2"><b>hi &amp; bye</b><c></c>tail</a>`
	doc := mustParse(t, src)
	out := Serialize(doc.Root)
	doc2 := mustParse(t, out)
	if Serialize(doc2.Root) != out {
		t.Errorf("serialize not stable: %q vs %q", out, Serialize(doc2.Root))
	}
}

func TestSerializedSizeMatches(t *testing.T) {
	src := `<a x="v&quot;"><b>one &lt; two</b><c/><d k="1" l="2">z</d></a>`
	doc := mustParse(t, src)
	s := Serialize(doc.Root)
	if got := SerializedSize(doc.Root); got != len(s) {
		t.Errorf("SerializedSize = %d, want %d", got, len(s))
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !validUTF8NoControl(s) {
			return true
		}
		doc, err := Parse("<a>" + EscapeText(s) + "</a>")
		if err != nil {
			return false
		}
		return doc.Root.InnerText() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !validUTF8NoControl(s) {
			return true
		}
		doc, err := Parse(`<a v="` + EscapeAttr(s) + `"></a>`)
		if err != nil {
			return false
		}
		v, _ := doc.Root.Attr("v")
		return v == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// validUTF8NoControl filters inputs the XML spec disallows in documents.
func validUTF8NoControl(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
			return false
		}
	}
	return true
}

func TestNodeHelpers(t *testing.T) {
	doc := mustParse(t, `<p><q><r>1</r></q><q><r>2</r><r>3</r></q></p>`)
	if got := len(doc.Root.Descendants("r")); got != 3 {
		t.Errorf("Descendants(r) = %d, want 3", got)
	}
	rs := doc.Root.Descendants("r")
	if rs[2].Depth() != 2 {
		t.Errorf("depth = %d, want 2", rs[2].Depth())
	}
	if got := doc.Root.CountElements(); got != 6 {
		t.Errorf("CountElements = %d, want 6", got)
	}
	names := doc.Root.ElementNames()
	if len(names) != 3 || names[0] != "p" || names[1] != "q" || names[2] != "r" {
		t.Errorf("ElementNames = %v", names)
	}
}

func TestClone(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>t</b></a>`)
	cp := doc.Root.Clone()
	cp.SetAttr("x", "2")
	cp.Children[0].Children[0].Text = "changed"
	if v, _ := doc.Root.Attr("x"); v != "1" {
		t.Error("clone shares attrs with original")
	}
	if doc.Root.InnerText() != "t" {
		t.Error("clone shares children with original")
	}
	if cp.Children[0].Parent != cp {
		t.Error("clone children have wrong parent")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("e")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	if len(n.Attrs) != 1 {
		t.Fatalf("got %d attrs, want 1", len(n.Attrs))
	}
	if v, _ := n.Attr("k"); v != "2" {
		t.Errorf("k = %q, want 2", v)
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	doc := mustParse(t, `<a><skip><inner/></skip><keep/></a>`)
	var visited []string
	doc.Root.Walk(func(n *Node) bool {
		if n.IsElement() {
			visited = append(visited, n.Name)
		}
		return n.Name != "skip"
	})
	want := "a,skip,keep"
	if got := strings.Join(visited, ","); got != want {
		t.Errorf("visited %q, want %q", got, want)
	}
}

func TestDeeplyNestedDocument(t *testing.T) {
	depth := 400
	src := strings.Repeat("<d>", depth) + "x" + strings.Repeat("</d>", depth)
	doc := mustParse(t, src)
	n := doc.Root
	count := 1
	for len(n.ChildElements()) > 0 {
		n = n.ChildElements()[0]
		count++
	}
	if count != depth {
		t.Errorf("depth = %d, want %d", count, depth)
	}
}

func TestWhitespaceOnlyTextPreserved(t *testing.T) {
	doc := mustParse(t, "<a>  <b>x</b>  </a>")
	if len(doc.Root.Children) != 3 {
		t.Fatalf("got %d children, want 3 (ws,b,ws)", len(doc.Root.Children))
	}
}
