package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error encountered while parsing a document.
type ParseError struct {
	// Offset is the byte offset where the error was detected.
	Offset int
	// Line is the 1-based line number of the error.
	Line int
	// Msg describes the problem.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}

// Parse parses a complete XML document.
func Parse(input string) (*Document, error) {
	p := &parser{src: input}
	return p.parseDocument()
}

// ParseFragment parses a well-formed XML fragment: a sequence of elements
// and character data with no prolog. It returns the top-level nodes.
func ParseFragment(input string) ([]*Node, error) {
	p := &parser{src: input}
	root := NewElement("#fragment")
	if err := p.parseContent(root); err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q after fragment content", p.src[p.pos])
	}
	for _, c := range root.Children {
		c.Parent = nil
	}
	return root.Children, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return &ParseError{Offset: p.pos, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errorf("expected name")
	}
	p.pos++
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(s string) error {
	if !strings.HasPrefix(p.src[p.pos:], s) {
		return p.errorf("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

func (p *parser) parseDocument() (*Document, error) {
	doc := &Document{}
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errorf("document has no root element")
		}
		if strings.HasPrefix(p.src[p.pos:], "<?") {
			if err := p.skipPI(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			if err := p.skipComment(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!DOCTYPE") {
			if err := p.parseDoctype(doc); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.peek() != '<' {
		return nil, p.errorf("expected root element")
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	doc.Root = root
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected content after root element")
		}
	}
	return doc, nil
}

func (p *parser) skipPI() error {
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errorf("unterminated processing instruction")
	}
	p.pos += end + 2
	return nil
}

func (p *parser) skipComment() error {
	end := strings.Index(p.src[p.pos+4:], "-->")
	if end < 0 {
		return p.errorf("unterminated comment")
	}
	p.pos += 4 + end + 3
	return nil
}

// parseDoctype parses <!DOCTYPE name [internal subset]> capturing the name
// and raw internal subset. External identifiers (SYSTEM/PUBLIC) are skipped.
func (p *parser) parseDoctype(doc *Document) error {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return err
	}
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return err
	}
	doc.DoctypeName = name
	for {
		p.skipSpace()
		if p.eof() {
			return p.errorf("unterminated DOCTYPE")
		}
		c := p.peek()
		switch {
		case c == '>':
			p.pos++
			return nil
		case c == '[':
			p.pos++
			subset, err := p.scanInternalSubset()
			if err != nil {
				return err
			}
			doc.InternalSubset = subset
		case c == '"' || c == '\'':
			q := c
			p.pos++
			for !p.eof() && p.src[p.pos] != q {
				p.pos++
			}
			if p.eof() {
				return p.errorf("unterminated literal in DOCTYPE")
			}
			p.pos++
		default:
			// SYSTEM / PUBLIC keyword or identifier characters.
			p.pos++
		}
	}
}

// scanInternalSubset consumes the DOCTYPE internal subset up to and
// including the closing ']' and returns the raw subset text.
func (p *parser) scanInternalSubset() (string, error) {
	start := p.pos
	depth := 1
	for !p.eof() {
		switch p.src[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				subset := p.src[start:p.pos]
				p.pos++
				return subset, nil
			}
		case '"', '\'':
			q := p.src[p.pos]
			p.pos++
			for !p.eof() && p.src[p.pos] != q {
				p.pos++
			}
			if p.eof() {
				return "", p.errorf("unterminated literal in DOCTYPE subset")
			}
		}
		p.pos++
	}
	return "", p.errorf("unterminated DOCTYPE internal subset")
}

func (p *parser) parseElement() (*Node, error) {
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	elem := NewElement(name)
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errorf("unterminated start tag <%s", name)
		}
		c := p.peek()
		if c == '>' {
			p.pos++
			break
		}
		if c == '/' {
			if err := p.expect("/>"); err != nil {
				return nil, err
			}
			return elem, nil
		}
		attrName, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		p.skipSpace()
		val, err := p.parseAttrValue()
		if err != nil {
			return nil, err
		}
		if _, dup := elem.Attr(attrName); dup {
			return nil, p.errorf("duplicate attribute %q on <%s>", attrName, name)
		}
		elem.Attrs = append(elem.Attrs, Attr{Name: attrName, Value: val})
	}
	if err := p.parseContent(elem); err != nil {
		return nil, err
	}
	// parseContent stops at "</".
	if err := p.expect("</"); err != nil {
		return nil, err
	}
	endName, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if endName != name {
		return nil, p.errorf("mismatched end tag: <%s> closed by </%s>", name, endName)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return elem, nil
}

func (p *parser) parseAttrValue() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", p.errorf("expected quoted attribute value")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		if p.src[p.pos] == '<' {
			return "", p.errorf("'<' in attribute value")
		}
		p.pos++
	}
	if p.eof() {
		return "", p.errorf("unterminated attribute value")
	}
	raw := p.src[start:p.pos]
	p.pos++
	return p.expandEntities(raw)
}

// parseContent parses element content (text, children, CDATA, comments,
// PIs) into parent, stopping before an end tag or at end of input.
func (p *parser) parseContent(parent *Node) error {
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parent.AppendText(text.String())
			text.Reset()
		}
	}
	for !p.eof() {
		c := p.src[p.pos]
		if c == '<' {
			rest := p.src[p.pos:]
			switch {
			case strings.HasPrefix(rest, "</"):
				flush()
				return nil
			case strings.HasPrefix(rest, "<!--"):
				if err := p.skipComment(); err != nil {
					return err
				}
			case strings.HasPrefix(rest, "<![CDATA["):
				end := strings.Index(rest[9:], "]]>")
				if end < 0 {
					return p.errorf("unterminated CDATA section")
				}
				text.WriteString(rest[9 : 9+end])
				p.pos += 9 + end + 3
			case strings.HasPrefix(rest, "<?"):
				if err := p.skipPI(); err != nil {
					return err
				}
			default:
				flush()
				child, err := p.parseElement()
				if err != nil {
					return err
				}
				parent.Append(child)
			}
			continue
		}
		if c == '&' {
			s, err := p.parseEntity()
			if err != nil {
				return err
			}
			text.WriteString(s)
			continue
		}
		text.WriteByte(c)
		p.pos++
	}
	flush()
	return nil
}

// parseEntity decodes a character or predefined entity reference starting
// at '&'.
func (p *parser) parseEntity() (string, error) {
	end := strings.IndexByte(p.src[p.pos:], ';')
	if end < 0 || end > 12 {
		return "", p.errorf("unterminated entity reference")
	}
	ref := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return decodeEntity(ref, p)
}

func decodeEntity(ref string, p *parser) (string, error) {
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(ref, "#") {
		var n int64
		var err error
		if strings.HasPrefix(ref, "#x") || strings.HasPrefix(ref, "#X") {
			n, err = strconv.ParseInt(ref[2:], 16, 32)
		} else {
			n, err = strconv.ParseInt(ref[1:], 10, 32)
		}
		if err != nil || n < 0 || n > 0x10FFFF {
			return "", p.errorf("invalid character reference &%s;", ref)
		}
		return string(rune(n)), nil
	}
	return "", p.errorf("unknown entity &%s;", ref)
}

// expandEntities decodes entity references in an attribute value.
func (p *parser) expandEntities(raw string) (string, error) {
	if !strings.Contains(raw, "&") {
		return raw, nil
	}
	var sb strings.Builder
	for i := 0; i < len(raw); {
		if raw[i] != '&' {
			sb.WriteByte(raw[i])
			i++
			continue
		}
		end := strings.IndexByte(raw[i:], ';')
		if end < 0 {
			return "", p.errorf("unterminated entity in attribute value")
		}
		s, err := decodeEntity(raw[i+1:i+end], p)
		if err != nil {
			return "", err
		}
		sb.WriteString(s)
		i += end + 1
	}
	return sb.String(), nil
}
