// Package xmltree provides a lightweight XML document model, parser, and
// serializer tailored to the needs of DTD-driven shredding: element trees
// with attributes and character data, deterministic serialization, and
// fragment extraction.
//
// The parser is intentionally small: no namespaces, no external entities,
// no validation. It handles the constructs that appear in real
// DTD-conforming document corpora — elements, attributes, character data,
// CDATA sections, comments, processing instructions, numeric and the five
// predefined character references, and a DOCTYPE declaration whose internal
// subset is captured verbatim for the dtd package to parse.
package xmltree

import (
	"sort"
	"strings"
)

// Attr is a single attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a node in an XML document tree: either an element or a text run.
type Node struct {
	// Name is the element tag name; empty for text nodes.
	Name string
	// Text holds character data for text nodes.
	Text string
	// Attrs are the attributes in document order.
	Attrs []Attr
	// Children are child nodes in document order.
	Children []*Node
	// Parent is the enclosing element, nil at the root.
	Parent *Node
}

// Document is a parsed XML document.
type Document struct {
	// Root is the document element.
	Root *Node
	// DoctypeName is the name in the <!DOCTYPE name ...> declaration,
	// empty if the document has none.
	DoctypeName string
	// InternalSubset is the raw text between '[' and ']' of the DOCTYPE
	// declaration, empty if absent.
	InternalSubset string
}

// NewElement returns a new element node with the given tag name.
func NewElement(name string) *Node {
	return &Node{Name: name}
}

// NewText returns a new text node with the given character data.
func NewText(text string) *Node {
	return &Node{Text: text}
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n.Name != "" }

// Append adds child to n's child list and sets its parent pointer.
// It returns n to allow chaining during tree construction.
func (n *Node) Append(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return n
}

// AppendText appends a text child containing s.
func (n *Node) AppendText(s string) *Node {
	return n.Append(NewText(s))
}

// SetAttr sets attribute name to value, replacing an existing attribute of
// the same name or appending a new one.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children of n, in document order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() {
			out = append(out, c)
		}
	}
	return out
}

// ChildrenNamed returns the element children of n with the given tag name,
// in document order.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildNamed returns the first element child named name, or nil.
func (n *Node) FirstChildNamed(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// InnerText returns the concatenation of all character data beneath n, in
// document order.
func (n *Node) InnerText() string {
	var sb strings.Builder
	n.appendInnerText(&sb)
	return sb.String()
}

func (n *Node) appendInnerText(sb *strings.Builder) {
	if n.IsText() {
		sb.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		c.appendInnerText(sb)
	}
}

// Walk visits n and every descendant in document order, calling fn for
// each. If fn returns false for a node, that node's subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Descendants returns all element descendants of n (not including n) with
// the given tag name, in document order.
func (n *Node) Descendants(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		c.Walk(func(d *Node) bool {
			if d.Name == name {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Clone returns a deep copy of n with a nil parent.
func (n *Node) Clone() *Node {
	cp := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// ElementNames returns the sorted set of distinct element tag names in the
// subtree rooted at n.
func (n *Node) ElementNames() []string {
	seen := map[string]bool{}
	n.Walk(func(d *Node) bool {
		if d.IsElement() {
			seen[d.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CountElements returns the number of element nodes in the subtree rooted
// at n, including n itself if it is an element.
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(d *Node) bool {
		if d.IsElement() {
			count++
		}
		return true
	})
	return count
}
