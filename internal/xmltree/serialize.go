package xmltree

import "strings"

// Serialize renders the subtree rooted at n as an XML string. Element
// attributes and children appear in document order; character data is
// escaped. Empty elements are rendered with an explicit end tag so that
// round-tripping is byte-stable regardless of how the source was written.
func Serialize(n *Node) string {
	var sb strings.Builder
	writeNode(&sb, n)
	return sb.String()
}

// SerializeAll renders a sequence of sibling nodes (an XML fragment).
func SerializeAll(nodes []*Node) string {
	var sb strings.Builder
	for _, n := range nodes {
		writeNode(&sb, n)
	}
	return sb.String()
}

func writeNode(sb *strings.Builder, n *Node) {
	if n.IsText() {
		sb.WriteString(EscapeText(n.Text))
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		sb.WriteString(EscapeAttr(a.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('>')
	for _, c := range n.Children {
		writeNode(sb, c)
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `<>&"`) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// SerializedSize returns the length in bytes of the serialized form of n
// without materializing the string.
func SerializedSize(n *Node) int {
	if n.IsText() {
		return len(EscapeText(n.Text))
	}
	// "<" + name + ">" ... "</" + name + ">"
	size := 2*len(n.Name) + 5
	for _, a := range n.Attrs {
		size += len(a.Name) + len(EscapeAttr(a.Value)) + 4
	}
	for _, c := range n.Children {
		size += SerializedSize(c)
	}
	return size
}
