package shred

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

const playDoc = `<PLAY>
  <INDUCT>
    <TITLE>Induction</TITLE>
    <SUBTITLE>sub one</SUBTITLE>
    <SUBTITLE>sub two</SUBTITLE>
    <SCENE>
      <TITLE>Scene A</TITLE>
      <SPEECH><SPEAKER>s1</SPEAKER><LINE>first line</LINE><LINE>second line</LINE></SPEECH>
      <SUBHEAD>head</SUBHEAD>
    </SCENE>
  </INDUCT>
  <ACT>
    <SCENE>
      <TITLE>Scene B</TITLE>
      <SPEECH><SPEAKER>s1</SPEAKER><SPEAKER>s2</SPEAKER><LINE>third line</LINE></SPEECH>
    </SCENE>
    <TITLE>Act One</TITLE>
    <SPEECH><SPEAKER>s3</SPEAKER><LINE>act speech</LINE></SPEECH>
    <PROLOGUE>prologue text</PROLOGUE>
  </ACT>
</PLAY>`

func load(t *testing.T, alg string) (*engine.Database, *Loader) {
	t.Helper()
	d, err := dtd.Parse(corpus.PlaysDTD)
	if err != nil {
		t.Fatal(err)
	}
	s := dtd.Simplify(d)
	var schema *mapping.Schema
	if alg == "hybrid" {
		schema, err = mapping.Hybrid(s)
	} else {
		schema, err = mapping.XORator(s)
	}
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	loader, err := NewLoader(db, schema, xadt.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.LoadXML(playDoc); err != nil {
		t.Fatal(err)
	}
	if err := db.RunStats(); err != nil {
		t.Fatal(err)
	}
	return db, loader
}

func TestHybridTupleCounts(t *testing.T) {
	_, loader := load(t, "hybrid")
	want := map[string]int64{
		"play": 1, "induct": 1, "act": 1, "scene": 2, "speech": 3,
		"subtitle": 2, "subhead": 1, "speaker": 4, "line": 4,
	}
	got := loader.TupleCounts()
	for table, n := range want {
		if got[table] != n {
			t.Errorf("%s tuples = %d, want %d", table, got[table], n)
		}
	}
}

func TestXoratorTupleCounts(t *testing.T) {
	_, loader := load(t, "xorator")
	want := map[string]int64{
		"play": 1, "induct": 1, "act": 1, "scene": 2, "speech": 3,
	}
	got := loader.TupleCounts()
	if len(got) != len(want) {
		t.Errorf("tables = %v", got)
	}
	for table, n := range want {
		if got[table] != n {
			t.Errorf("%s tuples = %d, want %d", table, got[table], n)
		}
	}
}

func TestHybridParentLinks(t *testing.T) {
	db, _ := load(t, "hybrid")
	res, err := db.Query(`
SELECT speechID, speech_parentID, speech_parentCODE FROM speech`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	codes := map[string]int{}
	for _, r := range res.Rows {
		codes[r[2].Str()]++
	}
	if codes["SCENE"] != 2 || codes["ACT"] != 1 {
		t.Errorf("parent codes = %v", codes)
	}
}

func TestHybridInlinedValues(t *testing.T) {
	db, _ := load(t, "hybrid")
	res, err := db.Query(`SELECT act_title, act_prologue FROM act`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "Act One" || res.Rows[0][1].Str() != "prologue text" {
		t.Errorf("act row = %v", res.Rows[0])
	}
	// A scene has no prologue column; its title is inlined.
	res, err = db.Query(`SELECT scene_title FROM scene WHERE scene_parentCODE = 'INDUCT'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Scene A" {
		t.Errorf("scene rows = %v", res.Rows)
	}
}

func TestHybridChildOrder(t *testing.T) {
	db, _ := load(t, "hybrid")
	res, err := db.Query(`SELECT line_value FROM line WHERE line_childOrder = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "second line" {
		t.Errorf("second lines = %v", res.Rows)
	}
}

func TestXoratorFragments(t *testing.T) {
	db, _ := load(t, "xorator")
	res, err := db.Query(`SELECT xadtText(speech_speaker) FROM speech WHERE speechID = 2`)
	if err != nil {
		t.Fatal(err)
	}
	want := `<SPEAKER>s1</SPEAKER><SPEAKER>s2</SPEAKER>`
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != want {
		t.Errorf("fragment = %v", res.Rows)
	}
	// NULL XADT for missing children: ACT's subtitle is absent.
	res, err = db.Query(`SELECT act_subtitle FROM act`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("act_subtitle = %v, want NULL", res.Rows[0][0])
	}
	// INDUCT has two subtitles in one fragment.
	res, err = db.Query(`SELECT xadtText(induct_subtitle) FROM induct`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Str(); !strings.Contains(got, "sub one") || !strings.Contains(got, "sub two") {
		t.Errorf("induct_subtitle = %q", got)
	}
}

func TestQueriesAgreeAcrossMappings(t *testing.T) {
	hdb, _ := load(t, "hybrid")
	xdb, _ := load(t, "xorator")
	// Lines containing "line" spoken by s1 (QE1 shape).
	hres, err := hdb.Query(`
SELECT line_value FROM speech, speaker, line
WHERE speaker_parentID = speechID AND speaker_value = 's1'
AND line_parentID = speechID AND line_value LIKE '%line%'`)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := xdb.Query(`
SELECT xadtText(getElm(speech_line, 'LINE', 'LINE', 'line')) FROM speech
WHERE findKeyInElm(speech_speaker, 'SPEAKER', 's1') = 1
AND findKeyInElm(speech_line, 'LINE', 'line') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	var hybrid, xorator []string
	for _, r := range hres.Rows {
		hybrid = append(hybrid, r[0].Str())
	}
	for _, r := range xres.Rows {
		for _, frag := range strings.Split(r[0].Str(), "</LINE>") {
			if frag == "" {
				continue
			}
			xorator = append(xorator, strings.TrimPrefix(frag, "<LINE>"))
		}
	}
	if len(hybrid) != 3 || len(xorator) != 3 {
		t.Fatalf("hybrid = %v, xorator = %v", hybrid, xorator)
	}
	seen := map[string]bool{}
	for _, s := range hybrid {
		seen[s] = true
	}
	for _, s := range xorator {
		if !seen[s] {
			t.Errorf("xorator result %q missing from hybrid results %v", s, hybrid)
		}
	}
}

func TestChooseFormatOnSchema(t *testing.T) {
	d, _ := dtd.Parse(corpus.PlaysDTD)
	s := dtd.Simplify(d)
	schema, err := mapping.XORator(s)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(playDoc)
	if err != nil {
		t.Fatal(err)
	}
	// The tiny document has few repeated tags per fragment: raw wins at
	// the paper's 20% threshold.
	if got := ChooseFormat(schema, []*xmltree.Document{doc}, 0.20); got != xadt.Raw {
		t.Errorf("ChooseFormat = %v, want Raw", got)
	}
	// A trivial threshold flips the decision when compression helps at
	// all; just ensure the function is sensitive to the threshold
	// without crashing.
	_ = ChooseFormat(schema, []*xmltree.Document{doc}, -1.0)
}

func TestLoaderRejectsSecondSchemaCreation(t *testing.T) {
	d, _ := dtd.Parse(corpus.PlaysDTD)
	s := dtd.Simplify(d)
	schema, _ := mapping.XORator(s)
	db := engine.Open(engine.Config{})
	if _, err := NewLoader(db, schema, xadt.Raw); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoader(db, schema, xadt.Raw); err == nil {
		t.Error("re-creating tables should fail")
	}
}

func TestLoadMultipleDocuments(t *testing.T) {
	d, _ := dtd.Parse(corpus.PlaysDTD)
	s := dtd.Simplify(d)
	schema, _ := mapping.XORator(s)
	db := engine.Open(engine.Config{})
	loader, _ := NewLoader(db, schema, xadt.Raw)
	for i := 0; i < 3; i++ {
		if err := loader.LoadXML(playDoc); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT playID FROM play`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("plays = %v, %v", res, err)
	}
	// IDs are unique across documents.
	ids := map[int64]bool{}
	for _, r := range res.Rows {
		ids[r[0].Int()] = true
	}
	if len(ids) != 3 {
		t.Errorf("ids = %v", ids)
	}
}

func TestAttrColumnsLoaded(t *testing.T) {
	src := `
<!ELEMENT r (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item code CDATA #IMPLIED>
`
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := mapping.Hybrid(dtd.Simplify(d))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(engine.Config{})
	loader, err := NewLoader(db, schema, xadt.Raw)
	if err != nil {
		t.Fatal(err)
	}
	err = loader.LoadXML(`<r><item code="A">one</item><item>two</item></r>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT item_code, item_value FROM item`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "A" || !res.Rows[1][0].IsNull() {
		t.Errorf("attr values = %v", res.Rows)
	}
}
