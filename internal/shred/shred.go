// Package shred loads XML documents into a database according to a
// mapping (Hybrid or XORator): it creates the mapped tables, walks each
// document, and emits tuples with synthetic IDs, parent links, parentCODE
// discriminators, sibling order, inlined values, and XADT fragments.
package shred

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/engine/catalog"
	"repro/internal/engine/storage"
	"repro/internal/engine/types"
	"repro/internal/mapping"
	"repro/internal/xadt"
	"repro/internal/xmltree"
)

// Loader shreds documents into the tables of one mapped schema.
type Loader struct {
	DB     *engine.Database
	Schema *mapping.Schema
	// Format is the storage representation used for XADT columns,
	// normally decided by ChooseFormat over sample documents (§4.1).
	Format xadt.Format
	// DisableHeaders writes seed-era headerless XADT values instead of
	// headered ones — for stores that must exercise the legacy decode
	// path.
	DisableHeaders bool
	// OnInsert, when non-nil, observes every tuple before it reaches the
	// table — the write-ahead log hook. An error aborts the load before
	// the unlogged insert is applied.
	OnInsert func(table string, row []types.Value) error

	ids map[string]int64 // per-relation ID counters
}

// NewLoader creates the schema's tables in the database and returns a
// loader. The database must not already hold the mapped tables (resume
// an existing store with ResumeLoader instead).
func NewLoader(db *engine.Database, schema *mapping.Schema, format xadt.Format) (*Loader, error) {
	for _, rel := range schema.Relations {
		if db.Catalog.Table(rel.Name) != nil {
			return nil, fmt.Errorf("shred: table %s already exists; use ResumeLoader", rel.Name)
		}
	}
	if err := EnsureTables(db, schema); err != nil {
		return nil, err
	}
	if err := EnsureXADTIndexes(db, schema); err != nil {
		return nil, err
	}
	return &Loader{DB: db, Schema: schema, Format: format, ids: map[string]int64{}}, nil
}

// EnsureTables creates any mapped relation missing from the database —
// used by fresh loaders and by crash recovery, whose checkpoint may
// predate the first load (and so hold none of the mapped tables).
func EnsureTables(db *engine.Database, schema *mapping.Schema) error {
	for _, rel := range schema.Relations {
		if db.Catalog.Table(rel.Name) != nil {
			continue
		}
		cols := make([]catalog.Column, len(rel.Columns))
		for i, c := range rel.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: kindOf(c.Type)}
		}
		if _, err := db.CreateTable(rel.Name, cols); err != nil {
			return err
		}
	}
	return nil
}

// EnsureXADTIndexes creates the secondary fragment index (structural
// paths + inverted keywords) on every mapped XADT column that lacks one.
// Creating them before the first load means Insert maintains them row by
// row instead of a separate backfill pass.
func EnsureXADTIndexes(db *engine.Database, schema *mapping.Schema) error {
	for _, rel := range schema.Relations {
		t := db.Catalog.Table(rel.Name)
		if t == nil {
			continue
		}
		for _, col := range rel.Columns {
			if col.Kind != mapping.KindXADT || t.FragIndexOn(col.Name) != nil {
				continue
			}
			if err := db.CreateXADTIndex(rel.Name, col.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResumeLoader attaches a loader to a database whose tables already hold
// shredded data (e.g. one restored from a snapshot). ID counters resume
// past the highest stored ID in each relation — deletes leave gaps, so
// the row count may undercount and reusing an ID would alias two
// elements.
func ResumeLoader(db *engine.Database, schema *mapping.Schema, format xadt.Format) (*Loader, error) {
	ids := map[string]int64{}
	for _, rel := range schema.Relations {
		tbl := db.Catalog.Table(rel.Name)
		if tbl == nil {
			return nil, fmt.Errorf("shred: database lacks table %s", rel.Name)
		}
		idCol := -1
		for i, c := range rel.Columns {
			if c.Kind == mapping.KindID {
				idCol = i
				break
			}
		}
		var max int64
		if idCol >= 0 {
			err := tbl.Heap.Scan(func(_ storage.RID, row []types.Value) error {
				if v := row[idCol]; !v.IsNull() && v.Kind() == types.KindInt && v.Int() > max {
					max = v.Int()
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		ids[rel.Name] = max
	}
	return &Loader{DB: db, Schema: schema, Format: format, ids: ids}, nil
}

func kindOf(t mapping.ColType) types.Kind {
	switch t {
	case mapping.Int:
		return types.KindInt
	case mapping.XADT:
		return types.KindXADT
	default:
		return types.KindString
	}
}

// LoadDocument shreds one parsed document.
func (l *Loader) LoadDocument(doc *xmltree.Document) error {
	if doc.Root == nil {
		return fmt.Errorf("shred: document has no root")
	}
	return l.walk(doc.Root, 0, "", 1)
}

// LoadXML parses and shreds document text.
func (l *Loader) LoadXML(text string) error {
	doc, err := xmltree.Parse(text)
	if err != nil {
		return err
	}
	return l.LoadDocument(doc)
}

// walk visits n: if n's element owns a relation, a tuple is emitted and n
// becomes the current parent context for its descendants.
func (l *Loader) walk(n *xmltree.Node, parentID int64, parentElem string, childOrder int) error {
	rel := l.Schema.RelationFor(n.Name)
	curParentID, curParentElem := parentID, parentElem
	if rel != nil {
		id, err := l.emit(rel, n, parentID, parentElem, childOrder)
		if err != nil {
			return err
		}
		curParentID, curParentElem = id, n.Name
	}
	// Recurse, tracking per-tag sibling positions.
	pos := map[string]int{}
	for _, c := range n.Children {
		if !c.IsElement() {
			continue
		}
		pos[c.Name]++
		if err := l.walk(c, curParentID, curParentElem, pos[c.Name]); err != nil {
			return err
		}
	}
	return nil
}

// emit builds and inserts the tuple for one relation instance.
func (l *Loader) emit(rel *mapping.Relation, n *xmltree.Node, parentID int64, parentElem string, childOrder int) (int64, error) {
	l.ids[rel.Name]++
	id := l.ids[rel.Name]
	row := make([]types.Value, len(rel.Columns))
	for i, col := range rel.Columns {
		switch col.Kind {
		case mapping.KindID:
			row[i] = types.NewInt(id)
		case mapping.KindParentID:
			row[i] = types.NewInt(parentID)
		case mapping.KindParentCode:
			row[i] = types.NewString(parentElem)
		case mapping.KindChildOrder:
			row[i] = types.NewInt(int64(childOrder))
		case mapping.KindValue:
			row[i] = types.NewString(directText(n))
		case mapping.KindAttr:
			if v, ok := n.Attr(col.Attr); ok {
				row[i] = types.NewString(v)
			} else {
				row[i] = types.Null
			}
		case mapping.KindInlined:
			if target := navigate(n, col.Path); target != nil {
				row[i] = types.NewString(directText(target))
			} else {
				row[i] = types.Null
			}
		case mapping.KindInlinedAttr:
			if target := navigate(n, col.Path); target != nil {
				if v, ok := target.Attr(col.Attr); ok {
					row[i] = types.NewString(v)
					break
				}
			}
			row[i] = types.Null
		case mapping.KindXADT:
			frags := n.ChildrenNamed(col.Path[0])
			if len(frags) == 0 {
				row[i] = types.Null
			} else if l.DisableHeaders {
				row[i] = types.NewXADT(xadt.Encode(frags, l.Format).Bytes())
			} else {
				// Stored values carry the fragment header so the XADT
				// methods can fast-reject without decoding.
				row[i] = types.NewXADT(xadt.EncodeStored(frags, l.Format).Bytes())
			}
		default:
			return 0, fmt.Errorf("shred: unknown column kind %v", col.Kind)
		}
	}
	if l.OnInsert != nil {
		if err := l.OnInsert(rel.Name, row); err != nil {
			return 0, err
		}
	}
	if err := l.DB.Catalog.Table(rel.Name).Insert(row); err != nil {
		return 0, err
	}
	return id, nil
}

// directText concatenates the direct text children of n, trimmed.
func directText(n *xmltree.Node) string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.IsText() {
			sb.WriteString(c.Text)
		}
	}
	return strings.TrimSpace(sb.String())
}

// navigate follows the first occurrence of each path step from n.
func navigate(n *xmltree.Node, path []string) *xmltree.Node {
	cur := n
	for _, step := range path {
		cur = cur.FirstChildNamed(step)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// ChooseFormat implements the storage-alternative decision of §4.1 over a
// schema: it collects the fragments that would populate XADT columns from
// the sample documents and picks Compressed only if it saves at least
// minSaving of the raw encoding (the paper uses 0.20).
func ChooseFormat(schema *mapping.Schema, samples []*xmltree.Document, minSaving float64) xadt.Format {
	var fragments [][]*xmltree.Node
	for _, rel := range schema.Relations {
		var xadtCols []mapping.Column
		for _, c := range rel.Columns {
			if c.Kind == mapping.KindXADT {
				xadtCols = append(xadtCols, c)
			}
		}
		if len(xadtCols) == 0 {
			continue
		}
		for _, doc := range samples {
			if doc.Root == nil {
				continue
			}
			doc.Root.Walk(func(n *xmltree.Node) bool {
				if n.Name != rel.Element {
					return true
				}
				for _, c := range xadtCols {
					if frags := n.ChildrenNamed(c.Path[0]); len(frags) > 0 {
						fragments = append(fragments, frags)
					}
				}
				return true
			})
		}
	}
	return xadt.ChooseFormat(fragments, minSaving)
}

// EnsureIDFloor raises rel's ID counter to at least id. Recovery uses it
// to restore counters exactly: the stored max ID can undershoot the
// pre-crash counter when the highest-ID rows were deleted, so the
// checkpoint's persisted counters and the IDs seen in replayed insert
// records are applied as floors.
func (l *Loader) EnsureIDFloor(rel string, id int64) {
	if l.ids[rel] < id {
		l.ids[rel] = id
	}
}

// TupleCounts reports the number of tuples loaded per relation.
func (l *Loader) TupleCounts() map[string]int64 {
	out := make(map[string]int64, len(l.ids))
	for k, v := range l.ids {
		out[k] = v
	}
	return out
}
