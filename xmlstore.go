// Package xmlstore stores and queries XML documents in an embedded
// object-relational engine, reproducing "Storing and Querying XML Data in
// Object-Relational DBMSs" (Runapongsa & Patel, EDBT 2002).
//
// Given a DTD, the package derives a storage schema with one of two
// mapping algorithms — the Hybrid inlining baseline of Shanmugasundaram
// et al. (pure relational) or the paper's XORator algorithm, which maps
// entire subtrees of the DTD graph to attributes of an XML abstract data
// type (XADT) — shreds documents into tables, and answers SQL queries
// that may invoke the XADT methods getElm, findKeyInElm, getElmIndex and
// the unnest table function.
//
// Typical use:
//
//	st, err := xmlstore.NewStore(myDTD, xmlstore.Config{Algorithm: xmlstore.XORator})
//	...
//	err = st.LoadXML([]string{doc1, doc2})
//	err = st.CreateDefaultIndexes()
//	err = st.RunStats()
//	res, err := st.Query(`SELECT getElm(speech_line, 'LINE', 'LINE', 'friend') FROM speech`)
package xmlstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/exec"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
)

// Algorithm selects the storage mapping.
type Algorithm = core.Algorithm

// The two mapping algorithms the paper compares.
const (
	// Hybrid is the relational inlining baseline.
	Hybrid = core.Hybrid
	// XORator is the paper's object-relational mapping.
	XORator = core.XORator
)

// Config tunes a Store; see core.Config for field semantics.
type Config = core.Config

// EngineConfig tunes the underlying database (buffer pool size, planner
// options, degree of parallelism); assign it to Config.Engine. Setting
// DOP > 1 — or leaving it 0 to default to runtime.GOMAXPROCS — makes
// scans, hash joins, and XADT UDF evaluation run across that many
// workers, with results identical to serial execution. Setting
// MemBudgetBytes caps each query's tracked operator memory: sorts,
// hash-join builds, and hash aggregates past the budget spill to
// temporary run files (under SpillDir) and still return exactly the
// unlimited-memory rows; Store.SpillStats reports the activity.
type EngineConfig = engine.Config

// SpillStats summarizes the spill activity of memory-bounded queries;
// returned by Store.SpillStats when EngineConfig.MemBudgetBytes is set.
type SpillStats = exec.SpillStats

// Store is a loaded XML store under one mapping.
type Store = core.Store

// Session is one transaction against a concurrent store. Open the store
// with EngineConfig.MVCC set, then Store.NewSession gives a snapshot-
// isolated context whose queries, DML, and document ops see a frozen
// state plus the session's own writes; Commit applies them atomically
// (one WAL batch) or fails with an error wrapping ErrConflict when a
// concurrent transaction committed a write-write conflict first.
type Session = core.Session

// ErrConflict is the sentinel error a conflicting Session.Commit wraps;
// test with errors.Is and retry the transaction.
var ErrConflict = core.ErrConflict

// Stats summarizes a store's storage footprint.
type Stats = core.Stats

// Format identifies an XADT storage representation.
type Format = xadt.Format

// XADT storage representations.
const (
	// Raw stores fragments as tagged text.
	Raw = xadt.Raw
	// Compressed stores fragments with dictionary-coded tag names.
	Compressed = xadt.Compressed
	// Directory stores raw text with a top-level element offset
	// directory — the paper's future-work metadata extension, which
	// speeds up order access (getElmIndex) and unnest.
	Directory = xadt.Directory
)

// NewStore parses a DTD and prepares an empty store.
func NewStore(dtdSource string, cfg Config) (*Store, error) {
	return core.NewStore(dtdSource, cfg)
}

// FragmentText renders an XADT query-result value as fragment text.
var FragmentText = core.FragmentText

// OpenSnapshotFile restores a store saved with Store.SaveFile, with
// default engine configuration.
func OpenSnapshotFile(path string) (*Store, error) {
	return core.OpenSnapshotFile(path, engine.Config{})
}

// OpenRecovered reopens a WAL-backed store (one created with
// Config.Engine.WALDir set) after a crash or clean shutdown: it loads
// the newest checkpoint and replays the committed write-ahead-log tail,
// dropping any torn final batch. The recovered store accepts further
// loads and checkpoints. Returns ErrNoCheckpoint when the directory
// holds no checkpoint yet.
func OpenRecovered(cfg Config) (*Store, error) {
	return core.OpenRecovered(cfg)
}

// ErrNoCheckpoint reports that a WAL directory holds no checkpoint to
// recover from.
var ErrNoCheckpoint = core.ErrNoCheckpoint

// SyncPolicy selects when the write-ahead log is fsynced; assign one to
// EngineConfig.WALSync.
type SyncPolicy = wal.SyncPolicy

// The WAL sync policies, strongest first.
const (
	// SyncAlways (the zero value) syncs at every batch commit.
	SyncAlways = wal.SyncAlways
	// SyncBatch group-commits: one sync per Load call.
	SyncBatch = wal.SyncBatch
	// SyncOff never syncs explicitly; the OS decides.
	SyncOff = wal.SyncOff
)

// Built-in DTDs from the paper, usable as NewStore inputs and with the
// bundled data generators.
const (
	// PlaysDTD is the running example of Figure 1.
	PlaysDTD = corpus.PlaysDTD
	// ShakespeareDTD is the full Shakespeare DTD of Figure 10.
	ShakespeareDTD = corpus.ShakespeareDTD
	// SigmodDTD is the SIGMOD Proceedings DTD of Figure 12.
	SigmodDTD = corpus.SigmodDTD
)

// SchemaText maps a DTD with the chosen algorithm and renders the
// resulting relational schema in the paper's notation (Figures 5 and 6).
func SchemaText(dtdSource string, alg Algorithm) (string, error) {
	d, err := dtd.Parse(dtdSource)
	if err != nil {
		return "", err
	}
	s := dtd.Simplify(d)
	var schema *mapping.Schema
	switch alg {
	case Hybrid:
		schema, err = mapping.Hybrid(s)
	case XORator, "":
		schema, err = mapping.XORator(s)
	default:
		return "", fmt.Errorf("xmlstore: unknown algorithm %q", alg)
	}
	if err != nil {
		return "", err
	}
	return schema.String(), nil
}

// MonetTableCount estimates the table count of the Monet path mapping for
// a DTD — the §2 comparison point (95-ish tables for Shakespeare against
// XORator's 7).
func MonetTableCount(dtdSource string) (int, error) {
	d, err := dtd.Parse(dtdSource)
	if err != nil {
		return 0, err
	}
	return mapping.MonetTableCount(dtd.Simplify(d))
}
