package xmlstore

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine/plan"
)

// Benchmarks: one per table and figure of the paper's evaluation. Each
// query benchmark appears as Hybrid and XORator sub-benchmarks so the
// output exposes the ratio the figures plot. Full DSx1..DSx8 sweeps (the
// figures' x-axis) are produced by cmd/repro; the benchmarks here run at
// DSx1 paper scale.

var benchState struct {
	once              sync.Once
	shakespeare       bench.Dataset
	sigmod            bench.Dataset
	shakeHybrid       *core.Store
	shakeXorator      *core.Store
	shakeHybridLoad   bench.LoadResult
	shakeXoratorLoad  bench.LoadResult
	sigmodHybrid      *core.Store
	sigmodXorator     *core.Store
	sigmodHybridLoad  bench.LoadResult
	sigmodXoratorLoad bench.LoadResult
	err               error
}

func setup(b *testing.B) {
	benchState.once.Do(func() {
		benchState.shakespeare = bench.ShakespeareDataset(0)
		benchState.sigmod = bench.SigmodDataset(0)
		set := func(st *core.Store, lr bench.LoadResult, err error, s **core.Store, l *bench.LoadResult) {
			if err != nil && benchState.err == nil {
				benchState.err = err
				return
			}
			*s = st
			*l = lr
		}
		st, lr, err := bench.BuildStore(benchState.shakespeare, core.Hybrid, 1)
		set(st, lr, err, &benchState.shakeHybrid, &benchState.shakeHybridLoad)
		st, lr, err = bench.BuildStore(benchState.shakespeare, core.XORator, 1)
		set(st, lr, err, &benchState.shakeXorator, &benchState.shakeXoratorLoad)
		st, lr, err = bench.BuildStore(benchState.sigmod, core.Hybrid, 1)
		set(st, lr, err, &benchState.sigmodHybrid, &benchState.sigmodHybridLoad)
		st, lr, err = bench.BuildStore(benchState.sigmod, core.XORator, 1)
		set(st, lr, err, &benchState.sigmodXorator, &benchState.sigmodXoratorLoad)
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
}

func runQuery(b *testing.B, st *core.Store, query string) {
	b.Helper()
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := st.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable1 reports the Shakespeare storage comparison (Table 1):
// table counts, database and index sizes, via custom metrics.
func BenchmarkTable1(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		_ = benchState.shakeHybrid.Stats()
	}
	h, x := benchState.shakeHybridLoad.Stats, benchState.shakeXoratorLoad.Stats
	b.ReportMetric(float64(h.Tables), "hybrid-tables")
	b.ReportMetric(float64(x.Tables), "xorator-tables")
	b.ReportMetric(float64(h.DataBytes)/(1<<20), "hybrid-MB")
	b.ReportMetric(float64(x.DataBytes)/(1<<20), "xorator-MB")
	b.ReportMetric(float64(h.IndexBytes)/(1<<20), "hybrid-idx-MB")
	b.ReportMetric(float64(x.IndexBytes)/(1<<20), "xorator-idx-MB")
}

// BenchmarkTable2 reports the SIGMOD storage comparison (Table 2).
func BenchmarkTable2(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		_ = benchState.sigmodHybrid.Stats()
	}
	h, x := benchState.sigmodHybridLoad.Stats, benchState.sigmodXoratorLoad.Stats
	b.ReportMetric(float64(h.Tables), "hybrid-tables")
	b.ReportMetric(float64(x.Tables), "xorator-tables")
	b.ReportMetric(float64(h.DataBytes)/(1<<20), "hybrid-MB")
	b.ReportMetric(float64(x.DataBytes)/(1<<20), "xorator-MB")
	b.ReportMetric(float64(h.IndexBytes)/(1<<20), "hybrid-idx-MB")
	b.ReportMetric(float64(x.IndexBytes)/(1<<20), "xorator-idx-MB")
}

// BenchmarkFig11 runs the QS workload of Figure 11 under both mappings.
func BenchmarkFig11(b *testing.B) {
	setup(b)
	for _, q := range bench.ShakespeareQueries() {
		b.Run(q.ID+"/Hybrid", func(b *testing.B) {
			runQuery(b, benchState.shakeHybrid, q.Hybrid)
		})
		b.Run(q.ID+"/XORator", func(b *testing.B) {
			runQuery(b, benchState.shakeXorator, q.XORator)
		})
	}
}

// BenchmarkFig11Loading measures the loading-time group of Figure 11.
func BenchmarkFig11Loading(b *testing.B) {
	setup(b)
	for _, alg := range []core.Algorithm{core.Hybrid, core.XORator} {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.BuildStore(benchState.shakespeare, alg, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13 runs the QG workload of Figure 13 under both mappings.
func BenchmarkFig13(b *testing.B) {
	setup(b)
	for _, q := range bench.SigmodQueries() {
		b.Run(q.ID+"/Hybrid", func(b *testing.B) {
			runQuery(b, benchState.sigmodHybrid, q.Hybrid)
		})
		b.Run(q.ID+"/XORator", func(b *testing.B) {
			runQuery(b, benchState.sigmodXorator, q.XORator)
		})
	}
}

// BenchmarkFig13Loading measures the loading-time group of Figure 13.
func BenchmarkFig13Loading(b *testing.B) {
	setup(b)
	for _, alg := range []core.Algorithm{core.Hybrid, core.XORator} {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.BuildStore(benchState.sigmod, alg, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14 measures the built-in vs UDF call overhead (Figure 14)
// on the Hybrid speaker table.
func BenchmarkFig14(b *testing.B) {
	setup(b)
	for _, q := range bench.UDFQueries() {
		b.Run(q.ID+"/builtin", func(b *testing.B) {
			runQuery(b, benchState.shakeHybrid, q.Builtin)
		})
		b.Run(q.ID+"/udf", func(b *testing.B) {
			runQuery(b, benchState.shakeHybrid, q.UDF)
		})
	}
}

// BenchmarkJoinAlgorithms ablates the physical join choice on the QS4
// Hybrid plan — the §4.4 cost argument (hash O(n), sort-merge O(n log n),
// nested loops O(n²)).
func BenchmarkJoinAlgorithms(b *testing.B) {
	setup(b)
	q := bench.ShakespeareQueries()[3].Hybrid
	for _, alg := range []plan.JoinAlgorithm{plan.JoinHash, plan.JoinMerge, plan.JoinNested} {
		b.Run(string(alg), func(b *testing.B) {
			benchState.shakeHybrid.DB.SetPlannerOptions(plan.Options{Join: alg})
			defer benchState.shakeHybrid.DB.SetPlannerOptions(plan.Options{})
			runQuery(b, benchState.shakeHybrid, q)
		})
	}
}

// BenchmarkIndexJoin ablates the index-nested-loop access path on the
// QS4 Hybrid plan: with a selective outer (one play), probing parentID
// indexes avoids the full scans the hash join pays for.
func BenchmarkIndexJoin(b *testing.B) {
	setup(b)
	q := bench.ShakespeareQueries()[3].Hybrid
	b.Run("hash", func(b *testing.B) {
		runQuery(b, benchState.shakeHybrid, q)
	})
	b.Run("index-nested-loop", func(b *testing.B) {
		benchState.shakeHybrid.DB.SetPlannerOptions(plan.Options{IndexJoin: true})
		defer benchState.shakeHybrid.DB.SetPlannerOptions(plan.Options{})
		runQuery(b, benchState.shakeHybrid, q)
	})
}

// BenchmarkFencedUDF ablates DB2's FENCED mode against the paper's NOT
// FENCED configuration.
func BenchmarkFencedUDF(b *testing.B) {
	setup(b)
	q := bench.UDFQueries()[0].UDF
	b.Run("not-fenced", func(b *testing.B) {
		runQuery(b, benchState.shakeHybrid, q)
	})
	b.Run("fenced", func(b *testing.B) {
		benchState.shakeHybrid.DB.Registry.Fenced = true
		defer func() { benchState.shakeHybrid.DB.Registry.Fenced = false }()
		runQuery(b, benchState.shakeHybrid, q)
	})
}

// BenchmarkXADTDirectory ablates the paper's future-work proposal: an
// element directory stored with each XADT value. QS6 (order access, the
// query XORator loses in Figure 11) is the workload the metadata was
// proposed for.
func BenchmarkXADTDirectory(b *testing.B) {
	setup(b)
	q := bench.ShakespeareQueries()[5].XORator // QS6
	dir := Directory
	dirStore, err := core.NewStore(ShakespeareDTD, core.Config{
		Algorithm: core.XORator, ForceFormat: &dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := dirStore.Load(benchState.shakespeare.Docs); err != nil {
		b.Fatal(err)
	}
	if err := dirStore.RunStats(); err != nil {
		b.Fatal(err)
	}
	b.Run("raw", func(b *testing.B) {
		runQuery(b, benchState.shakeXorator, q)
	})
	b.Run("directory", func(b *testing.B) {
		runQuery(b, dirStore, q)
	})
}

// BenchmarkCompression measures the §4.1 storage-format trade-off: query
// time over raw vs compressed XADT fragments on the SIGMOD store.
func BenchmarkCompression(b *testing.B) {
	setup(b)
	q := bench.SigmodQueries()[0] // QG1
	raw := Raw
	rawStore, err := core.NewStore(SigmodDTD, core.Config{Algorithm: core.XORator, ForceFormat: &raw})
	if err != nil {
		b.Fatal(err)
	}
	if err := rawStore.Load(benchState.sigmod.Docs); err != nil {
		b.Fatal(err)
	}
	if err := rawStore.RunStats(); err != nil {
		b.Fatal(err)
	}
	b.Run("compressed", func(b *testing.B) {
		runQuery(b, benchState.sigmodXorator, q.XORator)
	})
	b.Run("raw", func(b *testing.B) {
		runQuery(b, rawStore, q.XORator)
	})
	b.ReportMetric(float64(rawStore.Stats().DataBytes)/(1<<20), "raw-MB")
	b.ReportMetric(float64(benchState.sigmodXorator.Stats().DataBytes)/(1<<20), "compressed-MB")
}
