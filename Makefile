# Development workflow for the reproduction. `make ci` is the gate the
# repo is expected to keep green.

GO ?= go

.PHONY: ci vet build test race benchsmoke bench repro clean

ci: vet build test race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark pass: proves the benchmarks still compile and
# run without paying for stable measurements. The xadt smoke runs the
# full fast-path experiment at reduced scale under the race detector.
benchsmoke:
	$(GO) test -run=NONE -bench=BenchmarkScan -benchtime=1x ./internal/engine/
	$(GO) test -race -run TestXadtSmoke ./internal/bench/

bench:
	$(GO) test -run=NONE -bench=. ./...

# Reduced-scale pass over every experiment, including the parallel
# speedup table (writes BENCH_parallel.json).
repro:
	$(GO) run ./cmd/repro -quick -scales 1,2 -repeats 3

clean:
	rm -f BENCH_parallel.json BENCH_xadt.json *.pprof
