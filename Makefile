# Development workflow for the reproduction. `make ci` is the gate the
# repo is expected to keep green.

GO ?= go

.PHONY: ci vet build test race benchsmoke crashmatrix fuzz bench repro clean

ci: vet build test race benchsmoke crashmatrix fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark pass: proves the benchmarks still compile and
# run without paying for stable measurements. The xadt and spill smokes
# run their full experiments at reduced scale under the race detector;
# the spill one budget-forces all three blocking operators to disk.
benchsmoke:
	$(GO) test -run=NONE -bench=BenchmarkScan -benchtime=1x ./internal/engine/
	$(GO) test -race -run TestXadtSmoke ./internal/bench/
	$(GO) test -race -run TestIndexSmoke ./internal/bench/
	$(GO) test -race -run TestDurabilitySmoke ./internal/bench/
	$(GO) test -race -run TestSpillSmoke ./internal/bench/
	$(GO) test -race -run TestVectorSmoke ./internal/bench/
	$(GO) test -race -run TestMutationSmoke ./internal/bench/
	$(GO) test -race -run TestMVCCSmoke ./internal/bench/
	$(GO) test -race -run TestOptimizerSmoke ./internal/bench/
	$(GO) test -race -run TestDifferentialCostModelAxis ./internal/difftest/

# Exhaustive fault-injection sweep: crash the store at every mutating
# filesystem operation (plus torn-write variants) and require recovery to
# reproduce the committed prefix byte-for-byte. `race` already runs these
# tests once; this target keeps them callable standalone with -v output.
crashmatrix:
	$(GO) test -race -run 'TestCrashMatrix|TestRecoveredStoreAnswersQueries' ./internal/engine/wal/

# Short coverage-guided fuzz pass over the hostile-input decoders. The
# committed corpora (testdata/fuzz/) replay past crashers on every plain
# `go test`; this target additionally explores for a few seconds per
# target so CI keeps probing new inputs. Run a target standalone with a
# longer -fuzztime to dig deeper.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDTDParse -fuzztime=$(FUZZTIME) ./internal/dtd/
	$(GO) test -run=NONE -fuzz=FuzzRawScanEntities -fuzztime=$(FUZZTIME) ./internal/xadt/
	$(GO) test -run=NONE -fuzz=FuzzHeaderDecode -fuzztime=$(FUZZTIME) ./internal/xadt/
	$(GO) test -run=NONE -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/engine/wal/
	$(GO) test -run=NONE -fuzz=FuzzMutationReplay -fuzztime=$(FUZZTIME) ./internal/engine/wal/
	$(GO) test -run=NONE -fuzz=FuzzPostingCodec -fuzztime=$(FUZZTIME) ./internal/engine/xindex/
	$(GO) test -run=NONE -fuzz=FuzzTokenizeSuperset -fuzztime=$(FUZZTIME) ./internal/engine/xindex/
	$(GO) test -run=NONE -fuzz=FuzzStatsCodec -fuzztime=$(FUZZTIME) ./internal/engine/catalog/

bench:
	$(GO) test -run=NONE -bench=. ./...

# Reduced-scale pass over every experiment, including the parallel
# speedup table (writes BENCH_parallel.json).
repro:
	$(GO) run ./cmd/repro -quick -scales 1,2 -repeats 3

clean:
	rm -f BENCH_parallel.json BENCH_xadt.json BENCH_index.json BENCH_spill.json BENCH_durability.json BENCH_vector.json BENCH_mutation.json BENCH_concurrent.json BENCH_optimizer.json *.pprof
