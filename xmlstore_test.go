package xmlstore

import (
	"errors"
	"strings"
	"testing"
)

const tinyDoc = `<PLAY><ACT>
<SCENE><TITLE>One</TITLE>
<SPEECH><SPEAKER>A</SPEAKER><LINE>hello friend</LINE><LINE>goodbye</LINE></SPEECH>
</SCENE>
<TITLE>Act</TITLE>
<SPEECH><SPEAKER>B</SPEAKER><LINE>again</LINE></SPEECH>
</ACT></PLAY>`

func TestPublicAPIRoundTrip(t *testing.T) {
	st, err := NewStore(PlaysDTD, Config{Algorithm: XORator})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]string{tinyDoc}); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateDefaultIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := st.RunStats(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(`SELECT getElm(speech_line, 'LINE', 'LINE', 'friend') FROM speech
WHERE findKeyInElm(speech_line, 'LINE', 'friend') = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	text, err := FragmentText(res.Rows[0][0])
	if err != nil || !strings.Contains(text, "hello friend") {
		t.Errorf("fragment = %q, %v", text, err)
	}
}

func TestSchemaText(t *testing.T) {
	x, err := SchemaText(PlaysDTD, XORator)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(x, "speech_speaker:XADT") {
		t.Errorf("xorator schema:\n%s", x)
	}
	h, err := SchemaText(PlaysDTD, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h, "speaker_value:string") {
		t.Errorf("hybrid schema:\n%s", h)
	}
}

func TestMonetTableCount(t *testing.T) {
	n, err := MonetTableCount(ShakespeareDTD)
	if err != nil {
		t.Fatal(err)
	}
	if n < 60 {
		t.Errorf("Monet count = %d, want the §2 blow-up", n)
	}
}

func TestSchemaTextUnknownAlgorithm(t *testing.T) {
	if _, err := SchemaText(PlaysDTD, "bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Empty algorithm defaults to XORator.
	s, err := SchemaText(PlaysDTD, "")
	if err != nil || !strings.Contains(s, "XADT") {
		t.Errorf("default schema = %q, %v", s, err)
	}
}

func TestSnapshotThroughPublicAPI(t *testing.T) {
	st, err := NewStore(PlaysDTD, Config{Algorithm: XORator})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]string{tinyDoc}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.xordb"
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query(`SELECT COUNT(*) FROM speech`)
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Errorf("restored speech count = %v, %v", res, err)
	}
}

func TestRecoveryThroughPublicAPI(t *testing.T) {
	cfg := Config{
		Algorithm: XORator,
		Engine:    EngineConfig{WALDir: t.TempDir(), WALSync: SyncBatch},
	}
	if _, err := OpenRecovered(cfg); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty WAL dir: err = %v, want ErrNoCheckpoint", err)
	}
	st, err := NewStore(PlaysDTD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LoadXML([]string{tinyDoc}); err != nil {
		t.Fatal(err)
	}
	// No Close: the store "crashes" with the load only in the WAL.
	recovered, err := OpenRecovered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.LoadXML([]string{tinyDoc}); err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
	res, err := recovered.Query(`SELECT COUNT(*) FROM speech`)
	if err != nil || res.Rows[0][0].Int() != 4 {
		t.Errorf("recovered speech count = %v, %v", res, err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}
