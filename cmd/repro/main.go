// Command repro regenerates every table and figure of the paper's
// evaluation section:
//
//	-exp table1    Table 1: Shakespeare storage comparison
//	-exp table2    Table 2: SIGMOD storage comparison
//	-exp fig11     Figure 11: QS1-QS6 + loading ratios over DSx1..DSx8
//	-exp fig13     Figure 13: QG1-QG6 + loading ratios over DSx1..DSx8
//	-exp fig14     Figure 14: built-in vs UDF overhead (QT1, QT2)
//	-exp schemas   Figures 5 & 6: the mapped schemas of the Plays DTD
//	-exp monet     §2: Monet table-count comparison
//	-exp compress  §4.1: XADT storage-format decision per corpus
//	-exp parallel  intra-query parallelism: DOP 1 vs DOP N speedups
//	-exp xadt      XADT fast path: header filter + decode cache vs baseline
//	-exp index     XADT fragment indexes: path + keyword postings vs scans
//	-exp spill     memory-bounded execution: spilling operators + Top-N pushdown
//	-exp vector    vectorized batch execution vs the row-at-a-time engine
//	-exp optimizer cost-based planning: greedy vs DP join order, adaptive DOP gate
//	-exp difftest  differential correctness fuzzing across the full matrix
//	-exp crash     crash a WAL-backed load at a seeded point and recover it
//	-exp durability  load throughput with the WAL off/batch/always synced
//	-exp mutation  update-workload throughput: DML access paths + WAL cost
//	-exp concurrent  MVCC sessions: reader throughput vs writers + commit latency
//	-exp all       everything above
//
// The difftest experiment takes -seed and -iters and writes a minimized
// failure artifact (difftest_failure.txt) on divergence; -crash adds a
// kill-and-recover store to its comparison matrix, -mutate switches it
// to randomized mutation histories (SQL DML + document ops applied to
// both mappings with periodic kill-and-recover), -concurrent switches it
// to concurrent snapshot-transaction schedules checked against a serial
// oracle, -membudget N adds the memory-budget axis (every query rerun
// under an N-byte budget, forcing spills), -costmodel adds the
// cost-model axis (every query rerun under the greedy planner, with no
// statistics, and with stale statistics), and -sabotage deliberately
// corrupts the Gather reorder to prove the harness detects a broken
// configuration.
//
// Use -quick for a reduced-scale smoke run, -scales to override the
// DSxN sweep, and -dop to set the parallel degree (default GOMAXPROCS).
// The parallel experiment also writes BENCH_parallel.json; the xadt
// experiment writes BENCH_xadt.json; the index experiment writes
// BENCH_index.json; the spill experiment writes
// BENCH_spill.json; the vector experiment writes BENCH_vector.json; the
// durability experiment writes BENCH_durability.json; the mutation
// experiment writes BENCH_mutation.json; the concurrent experiment
// writes BENCH_concurrent.json; the optimizer experiment writes
// BENCH_optimizer.json. -cpuprofile and
// -memprofile write pprof profiles covering the selected experiments.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/difftest"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/engine/exec"
	"repro/internal/engine/storage"
	"repro/internal/engine/wal"
	"repro/internal/mapping"
	"repro/internal/xadt"
)

func main() { os.Exit(realMain()) }

// realMain runs the CLI and returns the process exit code; keeping it
// separate from main lets the profiling defers flush before exit.
func realMain() int {
	var (
		exp       = flag.String("exp", "all", "experiment to run")
		quick     = flag.Bool("quick", false, "reduced data sizes for a fast smoke run")
		scaleStr  = flag.String("scales", "1,2,4,8", "comma-separated DSxN scale factors")
		repeats   = flag.Int("repeats", 5, "runs per query (trimmed mean, paper uses 5)")
		dop       = flag.Int("dop", runtime.GOMAXPROCS(0), "degree of parallelism for -exp parallel")
		seed      = flag.Int64("seed", 1, "base seed for -exp difftest and -exp crash")
		iters     = flag.Int("iters", 0, "iterations for -exp difftest (0 = 200, or 50 with -quick)")
		crash     = flag.Bool("crash", false, "add the crash-recovery axis to -exp difftest")
		mutate    = flag.Bool("mutate", false, "run -exp difftest as randomized mutation histories (DML + document ops)")
		conc      = flag.Bool("concurrent", false, "run -exp difftest as concurrent snapshot-transaction schedules")
		membudget = flag.Int64("membudget", 0, "per-query memory budget in bytes for the -exp difftest budget axis (0 = off)")
		costmodel = flag.Bool("costmodel", false, "add the cost-model axis to -exp difftest (greedy / no-stats / stale-stats cells)")
		sabotage  = flag.Bool("sabotage", false, "corrupt the Gather reorder so -exp difftest must fail")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	scales, err := parseScales(*scaleStr)
	if err != nil {
		return perror(err)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return perror(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return perror(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				perror(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				perror(err)
			}
		}()
	}
	r := &runner{quick: *quick, scales: scales, repeats: *repeats, dop: *dop,
		seed: *seed, iters: *iters, crash: *crash, mutate: *mutate, concurrent: *conc,
		membudget: *membudget, costmodel: *costmodel, sabotage: *sabotage}

	experiments := map[string]func() error{
		"schemas":    r.schemas,
		"monet":      r.monet,
		"table1":     r.table1,
		"table2":     r.table2,
		"fig11":      r.fig11,
		"fig13":      r.fig13,
		"fig14":      r.fig14,
		"compress":   r.compress,
		"parallel":   r.parallel,
		"xadt":       r.xadt,
		"index":      r.index,
		"spill":      r.spill,
		"vector":     r.vector,
		"difftest":   r.difftest,
		"crash":      r.crashDemo,
		"durability": r.durability,
		"mutation":   r.mutation,
		"concurrent": r.concurrentBench,
		"optimizer":  r.optimizer,
	}
	order := []string{"schemas", "monet", "table1", "table2", "fig11", "fig13", "fig14", "compress", "parallel", "xadt", "index", "spill", "vector", "optimizer", "difftest", "crash", "durability", "mutation", "concurrent"}

	if *exp == "all" {
		for _, name := range order {
			if err := run(name, experiments[name]); err != nil {
				return perror(err)
			}
		}
		return 0
	}
	fn, ok := experiments[*exp]
	if !ok {
		return perror(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(*exp, fn); err != nil {
		return perror(err)
	}
	return 0
}

// perror reports err on stderr and returns the failure exit code.
func perror(err error) int {
	fmt.Fprintln(os.Stderr, "repro:", err)
	return 1
}

func run(name string, fn func() error) error {
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	if err := fn(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

type runner struct {
	quick      bool
	scales     []int
	repeats    int
	dop        int
	seed       int64
	iters      int
	crash      bool
	mutate     bool
	concurrent bool
	membudget  int64
	costmodel  bool
	sabotage   bool

	shakespeare *bench.Dataset
	sigmod      *bench.Dataset
}

func (r *runner) shakespeareDS() bench.Dataset {
	if r.shakespeare == nil {
		n := 0
		if r.quick {
			n = 6
		}
		ds := bench.ShakespeareDataset(n)
		r.shakespeare = &ds
	}
	return *r.shakespeare
}

func (r *runner) sigmodDS() bench.Dataset {
	if r.sigmod == nil {
		n := 0
		if r.quick {
			n = 150
		}
		ds := bench.SigmodDataset(n)
		r.sigmod = &ds
	}
	return *r.sigmod
}

func (r *runner) schemas() error {
	report, err := bench.SchemasReport()
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func (r *runner) monet() error {
	d, err := dtd.Parse(corpus.ShakespeareDTD)
	if err != nil {
		return err
	}
	s := dtd.Simplify(d)
	monet, err := mapping.MonetTableCount(s)
	if err != nil {
		return err
	}
	x, err := mapping.XORator(s)
	if err != nil {
		return err
	}
	fmt.Printf("Shakespeare DTD table counts: Monet=%d XORator=%d (paper: 95 vs \"four\"; Table 1 says 7)\n",
		monet, len(x.Relations))
	return nil
}

func (r *runner) sizeTable(title string, ds bench.Dataset) error {
	hybrid, hload, err := bench.BuildStore(ds, core.Hybrid, 1)
	if err != nil {
		return err
	}
	_ = hybrid
	xorator, xload, err := bench.BuildStore(ds, core.XORator, 1)
	if err != nil {
		return err
	}
	_ = xorator
	fmt.Print(bench.SizeTable(title, hload, xload))
	return nil
}

func (r *runner) table1() error {
	return r.sizeTable("Table 1: Shakespeare data set", r.shakespeareDS())
}

func (r *runner) table2() error {
	return r.sizeTable("Table 2: SIGMOD Proceedings data set", r.sigmodDS())
}

func (r *runner) figure(title string, ds bench.Dataset, queries []bench.Query) error {
	points, err := bench.RunScaled(ds, queries, r.scales, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.FigureTable(title, points))
	fmt.Println()
	for _, p := range points {
		fmt.Print(bench.DetailTable(p))
		fmt.Println()
	}
	return nil
}

func (r *runner) fig11() error {
	return r.figure("Figure 11: Shakespeare workload", r.shakespeareDS(), bench.ShakespeareQueries())
}

func (r *runner) fig13() error {
	return r.figure("Figure 13: SIGMOD workload", r.sigmodDS(), bench.SigmodQueries())
}

func (r *runner) fig14() error {
	hybrid, _, err := bench.BuildStore(r.shakespeareDS(), core.Hybrid, 1)
	if err != nil {
		return err
	}
	ms, err := bench.RunUDFOverhead(hybrid, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.UDFTable(ms))
	return nil
}

// parallel measures every workload query at DOP 1 and DOP N on both
// mappings, prints the parallel_speedup table, and writes
// BENCH_parallel.json.
func (r *runner) parallel() error {
	var all []bench.ParallelMeasurement
	for _, w := range []struct {
		ds      bench.Dataset
		queries []bench.Query
	}{
		{r.shakespeareDS(), bench.ShakespeareQueries()},
		{r.sigmodDS(), bench.SigmodQueries()},
	} {
		for _, alg := range []core.Algorithm{core.Hybrid, core.XORator} {
			st, _, err := bench.BuildStore(w.ds, alg, 1)
			if err != nil {
				return err
			}
			mapName := "hybrid"
			if alg == core.XORator {
				mapName = "xorator"
			}
			ms, err := bench.RunParallel(st, w.queries, mapName, r.dop, r.repeats)
			if err != nil {
				return err
			}
			all = append(all, ms...)
		}
	}
	fmt.Print(bench.ParallelTable(all))
	if err := bench.WriteParallelJSON("BENCH_parallel.json", all); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_parallel.json")
	return nil
}

// xadt measures the XADT fast path (fragment-header fast-reject +
// decode cache + pushdown) against the parse-every-call baseline on the
// same stores, prints the table, and writes BENCH_xadt.json.
func (r *runner) xadt() error {
	ms, err := bench.RunXadt(r.shakespeareDS(), r.sigmodDS(), r.dop, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.XadtTable(ms))
	// Show where each predicate ended up — pushed into the scan, answered
	// by an index, fused into the apply, or residual — per query plan.
	rep, err := bench.XadtPlanReport(r.shakespeareDS(), r.sigmodDS())
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if err := bench.WriteXadtJSON("BENCH_xadt.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_xadt.json")
	return nil
}

// index measures the XADT fragment indexes (structural path + inverted
// keyword postings) against the fast-path scan and seed scan baselines,
// prints each query's plan and predicate classification, and writes
// BENCH_index.json.
func (r *runner) index() error {
	ms, err := bench.RunIndex(r.shakespeareDS(), r.sigmodDS(), r.dop, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.IndexTable(ms))
	rep, err := bench.IndexPlanReport(r.shakespeareDS(), r.sigmodDS())
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if err := bench.WriteIndexJSON("BENCH_index.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_index.json")
	return nil
}

// spill measures memory-bounded execution: the Top-N fusion against the
// seed full-sort plan, and the three blocking operators at unlimited
// memory vs a 4 MiB per-query budget (forcing external sort, Grace
// join, and aggregate spilling), verifying identical rows serially and
// at DOP N. Writes BENCH_spill.json.
func (r *runner) spill() error {
	rows, budget := 60000, int64(4<<20)
	if r.quick {
		rows, budget = 8000, int64(256<<10)
	}
	ms, err := bench.RunSpill(rows, budget, r.dop, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.SpillTable(ms))
	if err := bench.WriteSpillJSON("BENCH_spill.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_spill.json")
	return nil
}

// vector measures the batch-at-a-time engine against the seed
// row-at-a-time engine on scan, filter, aggregation, and Top-N shapes at
// DOP 1 and DOP N, requiring identical rows cell by cell.
func (r *runner) vector() error {
	rows := 60000
	if r.quick {
		rows = 8000
	}
	ms, err := bench.RunVector(rows, r.dop, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.VectorTable(ms))
	if err := bench.WriteVectorJSON("BENCH_vector.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_vector.json")
	return nil
}

// optimizer measures the cost-based planner against the greedy
// join-order baseline and the serial baseline for the adaptive DOP
// gate, prints the table, and writes BENCH_optimizer.json.
func (r *runner) optimizer() error {
	n := 4000
	if r.quick {
		n = 1500
	}
	ms, err := bench.RunOptimizer(n, r.dop, r.repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.OptimizerTable(ms))
	if err := bench.WriteOptimizerJSON("BENCH_optimizer.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_optimizer.json")
	return nil
}

// difftest runs the differential correctness harness: random DTDs,
// documents, and queries checked across the Hybrid/XORator × DOP1/DOPN ×
// fast-path/legacy matrix. Any divergence is minimized into
// difftest_failure.txt and fails the experiment with a replay command.
func (r *runner) difftest() error {
	if r.sabotage {
		exec.DisableGatherReorder = true
		defer func() { exec.DisableGatherReorder = false }()
		fmt.Println("sabotage: Gather morsel reordering disabled; the matrix should diverge")
	}
	iters := r.iters
	if iters == 0 {
		iters = 200
		if r.quick {
			iters = 50
		}
	}
	if r.crash {
		fmt.Println("crash axis enabled: each iteration also crashes, recovers, and requeries a WAL-backed store")
	}
	if r.membudget > 0 {
		fmt.Printf("memory-budget axis enabled: every query also reruns under a %d-byte budget\n", r.membudget)
	}
	if r.costmodel {
		fmt.Println("cost-model axis enabled: every query also reruns under the greedy planner, with no statistics, and with stale statistics")
	}
	var sum *difftest.Summary
	var err error
	replay := ""
	if r.concurrent {
		// Concurrent schedules check many predicted outcomes per
		// iteration, so the default iteration budget is smaller.
		if r.iters == 0 {
			iters = 100
			if r.quick {
				iters = 20
			}
		}
		fmt.Println("concurrent axis: seeded schedules interleave snapshot transactions against a serial oracle")
		sum, err = difftest.RunConcurrent(difftest.Options{Seed: r.seed, Iters: iters, Log: os.Stdout})
		replay = " -concurrent"
	} else if r.mutate {
		// Mutation histories check many cells per iteration, so the
		// default iteration budget is smaller.
		if r.iters == 0 {
			iters = 25
			if r.quick {
				iters = 8
			}
		}
		fmt.Println("mutation axis: each iteration applies a random DML + document-op history with periodic kill-and-recover")
		sum, err = difftest.RunMutation(difftest.Options{Seed: r.seed, Iters: iters, Log: os.Stdout})
		replay = " -mutate"
	} else {
		sum, err = difftest.Run(difftest.Options{Seed: r.seed, Iters: iters, Crash: r.crash,
			MemBudget: r.membudget, CostModel: r.costmodel, Log: os.Stdout})
	}
	if err != nil {
		return err
	}
	fmt.Printf("difftest: %d iterations, %d cases, %d matrix cells, %d divergences (base seed %d)\n",
		sum.Iters, sum.Cases, sum.Cells, len(sum.Divergences), r.seed)
	if n := len(sum.Divergences); n > 0 {
		d := sum.Divergences[0]
		return fmt.Errorf("%d divergences; first: %s\nartifact: %s\nreplay: go run ./cmd/repro -exp difftest%s -seed %d -iters 1",
			n, d, sum.Artifact, replay, d.Seed)
	}
	return nil
}

// crashDemo kills a WAL-backed load at a seeded fault point without
// killing the process (a fault-injecting in-memory filesystem stands in
// for the disk), recovers the store, verifies the committed prefix
// byte-for-byte against an uninterrupted twin, and resumes loading to
// completion.
func (r *runner) crashDemo() error {
	ds := r.shakespeareDS()
	format := xadt.Raw
	mk := func(vfs storage.VFS) (*core.Store, error) {
		cfg := core.Config{Algorithm: core.XORator, ForceFormat: &format}
		if vfs != nil {
			cfg.Engine = engine.Config{WALDir: "wal", WALSync: wal.SyncBatch, VFS: vfs}
		}
		return core.NewStore(ds.DTD, cfg)
	}
	timeline := func(vfs storage.VFS) error {
		st, err := mk(vfs)
		if err != nil {
			return err
		}
		half := len(ds.Docs) / 2
		if err := st.Load(ds.Docs[:half]); err != nil {
			return err
		}
		if err := st.Checkpoint(); err != nil {
			return err
		}
		if err := st.Load(ds.Docs[half:]); err != nil {
			return err
		}
		return st.Close()
	}

	counter := &storage.FaultVFS{Inner: storage.NewMemVFS()}
	if err := timeline(counter); err != nil {
		return err
	}
	kinds := counter.OpKinds()
	firstCheckpoint := 0
	for i, k := range kinds {
		if k == "rename" {
			firstCheckpoint = i + 1
			break
		}
	}
	rng := rand.New(rand.NewSource(r.seed))
	failAt := firstCheckpoint + 1 + rng.Intn(len(kinds)-firstCheckpoint)
	fmt.Printf("loading %d documents issues %d filesystem operations; crashing at op %d (%s), seed %d\n",
		len(ds.Docs), len(kinds), failAt, kinds[failAt-1], r.seed)

	mem := storage.NewMemVFS()
	if err := timeline(&storage.FaultVFS{Inner: mem, FailAtOp: failAt}); err == nil {
		return fmt.Errorf("timeline survived its injected fault")
	} else {
		fmt.Printf("crash: %v\n", err)
	}

	start := time.Now()
	rec, err := core.OpenRecovered(core.Config{ForceFormat: &format,
		Engine: engine.Config{WALDir: "wal", WALSync: wal.SyncBatch, VFS: mem}})
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	committed := int(rec.CommittedBatches())
	fmt.Printf("recovered %d/%d committed documents in %v\n",
		committed, len(ds.Docs), time.Since(start).Round(time.Microsecond))

	twin, err := mk(nil)
	if err != nil {
		return err
	}
	if committed > 0 {
		if err := twin.Load(ds.Docs[:committed]); err != nil {
			return err
		}
	}
	if err := difftest.CompareStores(rec, twin); err != nil {
		return fmt.Errorf("recovered store differs from the committed prefix: %w", err)
	}
	fmt.Println("recovered store is byte-identical to an uninterrupted load of the committed prefix")

	if err := rec.Load(ds.Docs[committed:]); err != nil {
		return fmt.Errorf("resuming load: %w", err)
	}
	full, err := mk(nil)
	if err != nil {
		return err
	}
	if err := full.Load(ds.Docs); err != nil {
		return err
	}
	if err := difftest.CompareStores(rec, full); err != nil {
		return fmt.Errorf("resumed store differs from a full load: %w", err)
	}
	fmt.Printf("resumed the remaining %d documents; final state matches a never-crashed store\n",
		len(ds.Docs)-committed)
	return rec.Close()
}

// durability measures document-load throughput with the WAL disabled and
// at each sync policy, prints the overhead table, and writes
// BENCH_durability.json.
func (r *runner) mutation() error {
	dir, err := os.MkdirTemp("", "repro-mutation-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ops, repeats := 400, r.repeats
	if r.quick {
		ops, repeats = 120, 1
	}
	ms, err := bench.RunMutation(r.shakespeareDS(), dir, ops, repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.MutationTable(ms))
	if err := bench.WriteMutationJSON("BENCH_mutation.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_mutation.json")
	return nil
}

// concurrentBench measures MVCC session throughput: snapshot-reader
// queries per second with 0/1/4 concurrent writer transactions, and
// write-transaction commit latency under each WAL sync policy. Writes
// BENCH_concurrent.json.
func (r *runner) concurrentBench() error {
	dir, err := os.MkdirTemp("", "repro-concurrent-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reads, commits := 2000, 200
	if r.quick {
		reads, commits = 400, 50
	}
	ms, err := bench.RunConcurrent(r.shakespeareDS(), dir, reads, commits)
	if err != nil {
		return err
	}
	fmt.Print(bench.ConcurrentTable(ms))
	if err := bench.WriteConcurrentJSON("BENCH_concurrent.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_concurrent.json")
	return nil
}

func (r *runner) durability() error {
	dir, err := os.MkdirTemp("", "repro-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	repeats := r.repeats
	if r.quick {
		repeats = 1
	}
	ms, err := bench.RunDurability(r.shakespeareDS(), dir, repeats)
	if err != nil {
		return err
	}
	fmt.Print(bench.DurabilityTable(ms))
	if err := bench.WriteDurabilityJSON("BENCH_durability.json", ms); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_durability.json")
	return nil
}

func (r *runner) compress() error {
	for _, ds := range []bench.Dataset{r.shakespeareDS(), r.sigmodDS()} {
		raw := corpusFormatSize(ds, false)
		comp := corpusFormatSize(ds, true)
		choice := "raw"
		saving := 1 - float64(comp)/float64(raw)
		if saving >= 0.20 {
			choice = "compressed"
		}
		fmt.Printf("%-12s raw=%.1fMB compressed=%.1fMB saving=%.0f%% -> %s\n",
			ds.Name, float64(raw)/(1<<20), float64(comp)/(1<<20), saving*100, choice)
	}
	return nil
}

// corpusFormatSize loads the corpus under XORator with a forced XADT
// format and reports the database size.
func corpusFormatSize(ds bench.Dataset, compressed bool) int64 {
	format := core.Config{Algorithm: core.XORator}
	f := xadt.Raw
	if compressed {
		f = xadt.Compressed
	}
	format.ForceFormat = &f
	st, err := core.NewStore(ds.DTD, format)
	if err != nil {
		fatal(err)
	}
	if err := st.Load(ds.Docs); err != nil {
		fatal(err)
	}
	return st.Stats().DataBytes
}

func parseScales(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad scale %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
