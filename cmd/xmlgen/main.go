// Command xmlgen emits the synthetic corpora of the evaluation — the
// Shakespeare-like plays (§4.3) and the SIGMOD Proceedings documents
// (§4.4) — as XML files, standing in for Bosak's corpus and IBM's XML
// Generator.
//
// Usage:
//
//	xmlgen -dataset shakespeare -out plays/
//	xmlgen -dataset sigmod -n 100 -out proceedings/
//	xmlgen -dataset shakespeare -n 1            # one document to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	var (
		dataset = flag.String("dataset", "shakespeare", "corpus: shakespeare or sigmod")
		n       = flag.Int("n", 0, "number of documents (0 = paper scale)")
		seed    = flag.Int64("seed", 0, "generator seed (0 = paper default)")
		out     = flag.String("out", "", "output directory (empty = stdout)")
	)
	flag.Parse()

	var docs []*xmltree.Document
	switch *dataset {
	case "shakespeare":
		cfg := datagen.DefaultPlayConfig()
		if *n > 0 {
			cfg.Plays = *n
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		docs = datagen.GeneratePlays(cfg)
	case "sigmod":
		cfg := datagen.DefaultSigmodConfig()
		if *n > 0 {
			cfg.Documents = *n
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		docs = datagen.GenerateSigmod(cfg)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	if *out == "" {
		for _, d := range docs {
			fmt.Println(xmltree.Serialize(d.Root))
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	total := 0
	for i, d := range docs {
		text := xmltree.Serialize(d.Root)
		name := filepath.Join(*out, fmt.Sprintf("%s_%04d.xml", *dataset, i))
		if err := os.WriteFile(name, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		total += len(text)
	}
	fmt.Printf("wrote %d documents (%.1f MB) to %s\n",
		len(docs), float64(total)/(1<<20), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlgen:", err)
	os.Exit(1)
}
