// Command dtd2schema maps a DTD to a storage schema and prints it in the
// paper's notation (Figures 5 and 6).
//
// Usage:
//
//	dtd2schema -alg xorator -builtin plays
//	dtd2schema -alg hybrid -dtd myschema.dtd
//	dtd2schema -alg both -builtin shakespeare
//	dtd2schema -alg monet -builtin shakespeare   # table-count estimate only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/dtd"
	"repro/internal/mapping"
)

func main() {
	var (
		dtdFile = flag.String("dtd", "", "path to a DTD file")
		builtin = flag.String("builtin", "", "built-in DTD: plays, shakespeare, sigmod")
		alg     = flag.String("alg", "both", "mapping: hybrid, xorator, both, monet")
	)
	flag.Parse()

	src, err := dtdSource(*dtdFile, *builtin)
	if err != nil {
		fatal(err)
	}
	d, err := dtd.Parse(src)
	if err != nil {
		fatal(err)
	}
	simplified := dtd.Simplify(d)

	switch *alg {
	case "hybrid", "xorator", "both":
		if *alg != "xorator" {
			schema, err := mapping.Hybrid(simplified)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- Hybrid schema (%d tables)\n%s\n", len(schema.Relations), schema)
		}
		if *alg != "hybrid" {
			schema, err := mapping.XORator(simplified)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- XORator schema (%d tables)\n%s\n", len(schema.Relations), schema)
		}
	case "monet":
		n, err := mapping.MonetTableCount(simplified)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Monet path mapping: %d tables\n", n)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
}

func dtdSource(file, builtin string) (string, error) {
	switch {
	case file != "" && builtin != "":
		return "", fmt.Errorf("use -dtd or -builtin, not both")
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		return string(b), nil
	case builtin == "plays":
		return corpus.PlaysDTD, nil
	case builtin == "shakespeare":
		return corpus.ShakespeareDTD, nil
	case builtin == "sigmod":
		return corpus.SigmodDTD, nil
	case builtin != "":
		return "", fmt.Errorf("unknown built-in DTD %q (plays, shakespeare, sigmod)", builtin)
	default:
		return "", fmt.Errorf("one of -dtd or -builtin is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtd2schema:", err)
	os.Exit(1)
}
