// Command xorload loads XML documents into an embedded store under a
// chosen mapping and reports storage statistics; it can then run ad-hoc
// queries against the loaded database.
//
// Usage:
//
//	xorload -dtd my.dtd -alg xorator docs/*.xml
//	xorload -builtin shakespeare -alg both              # generated corpus
//	xorload -builtin sigmod -alg xorator -query "SELECT COUNT(*) FROM pp"
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/types"
	"repro/internal/xmltree"
)

func main() {
	var (
		dtdFile = flag.String("dtd", "", "path to the DTD the documents conform to")
		builtin = flag.String("builtin", "", "built-in corpus: shakespeare or sigmod (generates data)")
		alg     = flag.String("alg", "xorator", "mapping: hybrid, xorator, both")
		query   = flag.String("query", "", "SQL query to run after loading")
		indexes = flag.Bool("indexes", true, "build the default workload indexes")
		docsN   = flag.Int("n", 0, "built-in corpus size (0 = paper scale)")
		save    = flag.String("save", "", "write a store snapshot to this path after loading")
		open    = flag.String("open", "", "restore a store snapshot instead of loading documents")
	)
	flag.Parse()

	if *open != "" {
		st, err := core.OpenSnapshotFile(*open, engine.Config{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(st.Stats())
		if *query != "" {
			res, err := st.Query(*query)
			if err != nil {
				fatal(err)
			}
			printResult(res)
		}
		return
	}

	dtdSrc, docs, err := inputs(*dtdFile, *builtin, *docsN, flag.Args())
	if err != nil {
		fatal(err)
	}

	algs := []core.Algorithm{core.Algorithm(*alg)}
	if *alg == "both" {
		algs = []core.Algorithm{core.Hybrid, core.XORator}
	}
	for _, a := range algs {
		st, err := core.NewStore(dtdSrc, core.Config{Algorithm: a})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := st.Load(docs); err != nil {
			fatal(err)
		}
		loadTime := time.Since(start)
		if *indexes {
			if err := st.CreateDefaultIndexes(); err != nil {
				fatal(err)
			}
		}
		if err := st.RunStats(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s  loaded %d docs in %v\n", st.Stats(), len(docs), loadTime.Round(time.Millisecond))
		if *save != "" {
			path := *save
			if len(algs) > 1 {
				path = string(a) + "_" + path
			}
			if err := st.SaveFile(path); err != nil {
				fatal(err)
			}
			fmt.Println("snapshot written to", path)
		}
		if *query != "" {
			res, err := st.Query(*query)
			if err != nil {
				fatal(err)
			}
			printResult(res)
		}
	}
}

func inputs(dtdFile, builtin string, n int, files []string) (string, []*xmltree.Document, error) {
	switch {
	case builtin == "shakespeare":
		ds := bench.ShakespeareDataset(n)
		return ds.DTD, ds.Docs, nil
	case builtin == "sigmod":
		ds := bench.SigmodDataset(n)
		return ds.DTD, ds.Docs, nil
	case builtin != "":
		return "", nil, fmt.Errorf("unknown built-in corpus %q", builtin)
	case dtdFile == "":
		return "", nil, fmt.Errorf("-dtd or -builtin is required")
	}
	b, err := os.ReadFile(dtdFile)
	if err != nil {
		return "", nil, err
	}
	if len(files) == 0 {
		return "", nil, fmt.Errorf("no document files given")
	}
	var docs []*xmltree.Document
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			return "", nil, err
		}
		doc, err := xmltree.Parse(string(text))
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", f, err)
		}
		docs = append(docs, doc)
	}
	return string(b), docs, nil
}

// printResult renders a query result, decoding XADT fragments to text.
func printResult(res *engine.Result) {
	fmt.Println(strings.Join(res.Cols, " | "))
	const maxRows = 50
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			return
		}
		parts := make([]string, len(row))
		for j, v := range row {
			if v.Kind() == types.KindXADT {
				s, err := core.FragmentText(v)
				if err != nil {
					s = "<corrupt fragment>"
				}
				parts[j] = s
			} else {
				parts[j] = v.String()
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("%d record(s) selected.\n", len(res.Rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xorload:", err)
	os.Exit(1)
}
